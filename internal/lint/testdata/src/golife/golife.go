// Package golife is analyzer testdata: goroutine shutdown proofs and
// guarded-send discipline inside spawned goroutines.
package golife

import "time"

// spawnLeak never exits: the classic leaked ticker goroutine.
func spawnLeak() {
	go func() {
		for { // want `golife: goroutine has an unbounded loop with no exit path`
			time.Sleep(time.Second)
		}
	}()
}

// spawnDaemon is the same shape with the reviewable opt-out.
func spawnDaemon() {
	//cwx:daemon test fixture runs for the process lifetime
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// spawnStopped exits through the stop channel: provable shutdown.
func spawnStopped(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Second)
			}
		}
	}()
}

// spawnCond is bounded by construction: the loop condition is the
// shutdown hook.
func spawnCond(alive func() bool) {
	go func() {
		for alive() {
			time.Sleep(time.Second)
		}
	}()
}

type worker struct {
	ch chan int
}

// spawnNamed is checked against the resolved callee body: run has both
// an unbounded loop and an unguarded send on an unproven channel.
func spawnNamed(w *worker) {
	go w.run()
}

func (w *worker) run() {
	for { // want `golife: goroutine has an unbounded loop with no exit path`
		w.ch <- 1 // want `golife: unguarded channel send on w.ch`
	}
}

// spawnRange ranges a channel nobody provably closes.
func spawnRange(ch chan int) {
	go func() {
		for range ch { // want `golife: goroutine has an unbounded loop with no exit path`
		}
	}()
}

// spawnRangeExit has an explicit way out.
func spawnRangeExit(ch chan int) {
	go func() {
		for v := range ch {
			if v < 0 {
				return
			}
		}
	}()
}

// spawnGuardedSend sends under a select with a stop alternative.
func spawnGuardedSend(out chan int, stop chan struct{}) {
	go func() {
		for i := 0; i < 10; i++ {
			select {
			case out <- i:
			case <-stop:
				return
			}
		}
	}()
}

// spawnBuffered sends on a channel provably buffered in this package.
func spawnBuffered() {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	<-errc
}

// spawnUnbuffered sends bare on an unbuffered channel: if the receiver
// gives up (timeout, error return), the goroutine wedges forever.
func spawnUnbuffered() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{} // want `golife: unguarded channel send on done`
	}()
	<-done
}

// spawnLabeledBreak exits the outer loop through a labeled break from
// inside a nested select.
func spawnLabeledBreak(stop chan struct{}) {
	go func() {
	outer:
		for {
			select {
			case <-stop:
				break outer
			default:
				time.Sleep(time.Second)
			}
		}
	}()
}
