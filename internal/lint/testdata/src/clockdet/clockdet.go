// Package clockdet is analyzer testdata: wall-clock and global-rand use
// in a simulation-scoped package.
package clockdet

import (
	"math/rand"
	"time"
)

func wall() time.Time {
	return time.Now() // want `clockdet: time.Now bypasses the virtual clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `clockdet: time.Sleep bypasses the virtual clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `clockdet: time.Since bypasses the virtual clock`
}

func scheduled(ch chan struct{}) {
	select {
	case <-time.After(time.Second): // want `clockdet: time.After bypasses the virtual clock`
	case <-ch:
	}
}

func allowed() time.Time {
	return time.Now() //cwx:allow clockdet -- testdata: intentional wall-clock telemetry
}

func globalRand() int {
	return rand.Intn(6) // want `clockdet: global math/rand Intn`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
