// Package lockscope is analyzer testdata: re-entrant entry points called
// under a lock, and sync.Pool Get/Put pairing.
package lockscope

import "sync"

type Engine struct{}

func (e *Engine) Observe(node string, v float64) {}

func (e *Engine) ObserveMap(node string, m map[string]float64) {}

type Notifier struct{}

func (n *Notifier) EventTriggered(rule, node string) {}

func (n *Notifier) EventCleared(rule, node string) {}

type record struct {
	mu     sync.Mutex
	seen   sync.RWMutex
	engine *Engine
	notif  *Notifier
	plugin func(node string)
	value  float64
}

func underLock(r *record) {
	r.mu.Lock()
	r.engine.Observe("node042", r.value)          // want `lockscope: event engine Observe called while holding r.mu`
	r.notif.EventTriggered("cpu-high", "node042") // want `lockscope: notifier EventTriggered called while holding r.mu`
	r.plugin("node042")                           // want `lockscope: func-valued field plugin called while holding r.mu`
	r.mu.Unlock()
}

func underRLock(r *record) {
	r.seen.RLock()
	r.notif.EventCleared("cpu-high", "node042") // want `lockscope: notifier EventCleared called while holding r.seen`
	r.seen.RUnlock()
}

// unlockFirst is the sanctioned pattern: snapshot under the lock,
// release, then call out.
func unlockFirst(r *record) {
	r.mu.Lock()
	v := r.value
	r.mu.Unlock()
	r.engine.Observe("node042", v)
}

func underDeferredLock(r *record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engine.Observe("node042", r.value) // want `lockscope: event engine Observe called while holding r.mu`
}

// closureEscapes: the literal runs after the lock region, so its body is
// analyzed with no locks held.
func closureEscapes(r *record) func() {
	r.mu.Lock()
	f := func() { r.engine.Observe("node042", r.value) }
	r.mu.Unlock()
	return f
}

// --- sync.Pool pairing -------------------------------------------------

var bufPool sync.Pool

func pooledDefer() int {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	return len(buf)
}

func pooledHandoff() []byte {
	buf := bufPool.Get().([]byte)
	return buf
}

func pooledExplicit(cond bool) int {
	buf := bufPool.Get().([]byte)
	if cond {
		return 1 // want `lockscope: return without bufPool.Put for the value from bufPool.Get`
	}
	n := len(buf)
	bufPool.Put(buf)
	return n
}

func pooledLeak() {
	buf := bufPool.Get().([]byte) // want `lockscope: bufPool.Get without a matching bufPool.Put`
	_ = buf
}
