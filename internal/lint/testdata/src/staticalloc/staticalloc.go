// Package staticalloc is analyzer testdata: compiler-reported heap
// escapes inside //cwx:hotpath functions. This directory is its own
// module so `go build -gcflags=-m .` works here; the test feeds the
// resulting escape lines to the analyzer.
package staticalloc

type point struct {
	x, y int
}

// sink forces the escape: the pointer outlives the frame.
var sink *point

// Escaping claims the hot path but returns a heap pointer: the escape
// analysis proof fails.
//
//cwx:hotpath
func Escaping(x, y int) *point {
	return &point{x: x, y: y} // want `staticalloc: heap escape in //cwx:hotpath function Escaping`
}

// Fine claims the hot path and keeps everything on the stack.
//
//cwx:hotpath
func Fine(x, y int) int {
	p := point{x: x, y: y}
	return p.x + p.y
}

// ColdEscape escapes identically but carries no hotpath claim: the
// compiler decision is recorded, not reported.
func ColdEscape(x, y int) {
	sink = &point{x: x, y: y}
}
