module staticalloc

go 1.22
