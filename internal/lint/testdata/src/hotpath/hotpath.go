// Package hotpath is analyzer testdata: every seeded violation carries a
// `// want` expectation the self-test diffs against.
package hotpath

import (
	"fmt"
	"time"
)

//cwx:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want `hotpath: fmt.Sprintf allocates on the hot path`
}

//cwx:hotpath
func concats(a, b string) string {
	a += b              // want `hotpath: string concatenation allocates`
	return a + "suffix" // want `hotpath: string concatenation allocates`
}

//cwx:hotpath
func conversions(b []byte, s string) (string, []byte) {
	x := string(b) // want `hotpath: byte slice to string conversion allocates`
	y := []byte(s) // want `hotpath: string to \[\]byte conversion allocates`
	return x, y
}

//cwx:hotpath
func literals() int {
	m := map[string]int{} // want `hotpath: map literal allocates`
	s := []int{1, 2, 3}   // want `hotpath: slice literal allocates`
	return len(m) + len(s)
}

//cwx:hotpath
func closures() func() int {
	n := 7
	f := func() int { return n } // want `hotpath: closure capturing "n" allocates`
	g := func() int { return 42 }
	return func() int { return f() + g() } // want `hotpath: closure capturing "f" allocates`
}

//cwx:hotpath
func appends(dst []byte, n int) []byte {
	var bad []int
	bad = append(bad, 1) // want `hotpath: append to bad without preallocated-cap evidence`
	dst = append(dst, 'x')
	sized := make([]byte, 0, n)
	sized = append(sized, 'y')
	scratch := dst[:0]
	scratch = append(scratch, sized...)
	chained := append(dst, 'z')
	chained = append(chained, byte(bad[0]))
	_ = scratch
	return chained
}

//cwx:hotpath
func clocks() time.Duration {
	t0 := time.Now()
	t1 := time.Now() // want `hotpath: more than one time.Now per hot call`
	return t1.Sub(t0)
}

//cwx:hotpath
func suppressed(n int) string {
	return fmt.Sprintf("%d", n) //cwx:allow hotpath -- cold error path, exercised by the self-test
}

// notHot has no directive: nothing in it is checked.
func notHot(n int) string {
	return fmt.Sprintf("%d", n)
}
