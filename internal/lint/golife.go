package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// runGolife checks every `go` statement in the module for the two
// goroutine defects -race cannot see because they are lifecycle, not
// data, properties:
//
//  1. Provable shutdown. The spawned function must not contain an
//     unbounded loop (a `for` with no condition, or a `for range` over
//     a channel) without an exit path — a return, a break that targets
//     the loop, a panic, or a process exit. A loop whose condition is
//     an expression (`for sig.Wait(stop)`) is bounded by construction:
//     the condition is the shutdown hook. Spawn sites annotated
//     //cwx:daemon (same line or the line above) opt out — the
//     annotation is the reviewable claim that the goroutine is
//     intentionally process-lifetime.
//
//  2. Guarded sends. Every channel send lexically inside the spawned
//     function must be a case of a `select` with an alternative (a
//     second case or a default), or the channel must be provably
//     buffered — declared in the same package with make(chan T, n) for
//     a constant n > 0, and never reassigned. An unconditional send on
//     a maybe-full, maybe-abandoned channel is the classic shape of a
//     goroutine that outlives its consumer and leaks forever.
//
// The analysis follows one call level: `go s.run()` is checked against
// run's body when the callee resolves statically. Spawns of func values
// or interface methods are invisible (same documented blind spot as
// lockorder) — the repo's spawn sites are all direct.
func runGolife(prog *program) {
	for _, p := range prog.passes {
		for _, file := range p.pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkSpawn(prog, p, gs)
				return true
			})
		}
	}
}

// checkSpawn applies both golife rules to one `go` statement.
func checkSpawn(prog *program, p *pass, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	bodyPass := p
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := calleeFunc(p, gs.Call); callee != nil {
			if di := prog.declOf(callee); di != nil {
				body = di.decl.Body
				bodyPass = di.pass
			}
		}
	}
	if body == nil {
		return // func value / interface method: statically invisible
	}
	if !prog.daemonAt(gs.Pos()) {
		for _, loop := range unboundedLoops(bodyPass, body) {
			if !hasExitPath(bodyPass, loop) {
				prog.report(loop.Pos(), "golife",
					"goroutine has an unbounded loop with no exit path; drive it from a stop channel / clock condition or annotate the spawn site with //cwx:daemon")
			}
		}
	}
	checkSends(prog, bodyPass, body)
}

// unboundedLoops returns the loops in body that run forever unless a
// statement exits them: `for { }`, `for ... ; ; ... { }`, and
// `for range ch` (the channel may never be closed; if close-on-shutdown
// is the protocol, the close site is a break/return away from being
// provable — or the spawn is a daemon). Nested function literals are
// separate goroutine-less scopes and are skipped.
func unboundedLoops(p *pass, body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				loops = append(loops, n)
			}
		case *ast.RangeStmt:
			if t := p.pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					loops = append(loops, n)
				}
			}
		}
		return true
	})
	return loops
}

// hasExitPath reports whether loop contains a statement that leaves it:
// a return, a break targeting this loop (unlabeled at loop depth, or
// labeled with the loop's label), a panic, or a process exit.
func hasExitPath(p *pass, loop ast.Stmt) bool {
	label := loopLabel(p, loop)
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	found := false
	// depth counts breakable constructs between the loop and the
	// statement: 0 means an unlabeled break targets this loop.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return // runs in another frame; its returns don't exit the loop
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			if n.Tok != token.BREAK {
				return
			}
			if n.Label == nil {
				if depth == 0 {
					found = true
				}
			} else if label != "" && n.Label.Name == label {
				found = true
			}
			return
		case *ast.CallExpr:
			if isTerminalCall(p, n) {
				found = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil || found {
				return c == n && !found
			}
			walk(c, depth)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, 0)
		if found {
			return true
		}
	}
	return false
}

// loopLabel finds the label naming loop, if the parent statement is a
// LabeledStmt (resolved syntactically via the enclosing file).
func loopLabel(p *pass, loop ast.Stmt) string {
	for _, f := range p.pkg.Files {
		if loop.Pos() < f.Pos() || loop.Pos() >= f.End() {
			continue
		}
		var label string
		ast.Inspect(f, func(n ast.Node) bool {
			if ls, ok := n.(*ast.LabeledStmt); ok && ls.Stmt == loop {
				label = ls.Label.Name
				return false
			}
			return true
		})
		return label
	}
	return ""
}

// isTerminalCall recognizes calls that never return: panic, os.Exit,
// runtime.Goexit, and the log.Fatal family.
func isTerminalCall(p *pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := p.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	switch {
	case isPkgFunc(fn, "os", "Exit"),
		isPkgFunc(fn, "runtime", "Goexit"),
		isPkgFunc(fn, "log", "Fatal"),
		isPkgFunc(fn, "log", "Fatalf"),
		isPkgFunc(fn, "log", "Fatalln"):
		return true
	}
	return false
}

// --- guarded sends ----------------------------------------------------------------

// checkSends flags unconditional channel sends inside a spawned body:
// every send must sit in a select with an alternative, or target a
// provably buffered channel.
func checkSends(prog *program, p *pass, body *ast.BlockStmt) {
	guarded := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		alternatives := len(sel.Body.List)
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok && alternatives >= 2 {
				// A one-case select is a bare send in costume; with an
				// alternative (another case or a default, Comm==nil) the
				// send cannot wedge the goroutine.
				guarded[send] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || guarded[send] {
			return true
		}
		if buffered(p, send.Chan) {
			return true
		}
		prog.report(send.Pos(), "golife",
			"unguarded channel send on %s in a spawned goroutine; guard it with a select (stop/default case) or make the channel provably buffered (make(chan T, n) in this package)",
			exprText(send.Chan))
		return true
	})
}

// buffered reports whether the channel expression resolves to an object
// every package-local binding of which is make(chan T, n) with constant
// n > 0. One unbuffered (or invisible) binding disqualifies it.
func buffered(p *pass, ch ast.Expr) bool {
	obj := chanObj(p, ch)
	if obj == nil {
		return false
	}
	makes := bufferedObjs(p)
	state, seen := makes[obj]
	return seen && state
}

// chanObj resolves a channel expression to the variable or field it
// reads from.
func chanObj(p *pass, ch ast.Expr) types.Object {
	switch x := ast.Unparen(ch).(type) {
	case *ast.Ident:
		if obj := p.pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return p.pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		if s, ok := p.pkg.Info.Selections[x]; ok {
			return s.Obj()
		}
		return p.pkg.Info.Uses[x.Sel]
	}
	return nil
}

// bufferedObjs scans the whole package once for channel bindings:
// object -> true when every observed binding is a buffered make, false
// as soon as one is not. Recomputed per call — package counts are small
// and lint runs are not hot paths.
func bufferedObjs(p *pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	note := func(obj types.Object, isBuffered bool) {
		if obj == nil {
			return
		}
		if prev, ok := out[obj]; ok {
			out[obj] = prev && isBuffered
		} else {
			out[obj] = isBuffered
		}
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.pkg.Info.Defs[id]
					if obj == nil {
						obj = p.pkg.Info.Uses[id]
					}
					if obj == nil || !isChanType(obj.Type()) {
						continue
					}
					note(obj, isBufferedMake(p, rhs))
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					obj := p.pkg.Info.Defs[name]
					if obj == nil || !isChanType(obj.Type()) {
						continue
					}
					if i < len(n.Values) {
						note(obj, isBufferedMake(p, n.Values[i]))
					}
				}
			case *ast.KeyValueExpr:
				// struct composite literal: Field: make(chan T, n)
				id, ok := n.Key.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.pkg.Info.Uses[id]
				if obj == nil || !isChanType(obj.Type()) {
					return true
				}
				note(obj, isBufferedMake(p, n.Value))
			}
			return true
		})
	}
	return out
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isBufferedMake reports whether e is make(chan T, n) with constant n > 0.
func isBufferedMake(p *pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := p.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := p.pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	n, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && n > 0
}
