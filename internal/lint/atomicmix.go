package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAtomicmix runs globally, across every package in the load, because
// the mixed-access bug it targets is usually cross-package: one file
// publishes a counter with atomic.AddUint64 and a test or admin handler
// three packages away reads the field bare. Phase one collects every
// struct field whose address is passed to a sync/atomic function; phase
// two flags every other selector access to those fields. types.Var
// identity is shared across the whole loader universe, so the two
// phases match up without any name-based heuristics.
func runAtomicmix(passes []*pass) {
	atomicFields := make(map[*types.Var][]string) // field -> atomic ops seen
	for _, p := range passes {
		collectAtomicFields(p, atomicFields)
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, p := range passes {
		flagBareAccesses(p, atomicFields)
	}
}

// collectAtomicFields records struct fields used as &x.f arguments to
// sync/atomic package functions.
func collectAtomicFields(p *pass, out map[*types.Var][]string) {
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if !isAtomicFunc(fn) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := fieldVar(p, u.X); v != nil {
					out[v] = append(out[v], fn.Name())
				}
			}
			return true
		})
	}
}

// flagBareAccesses reports selector accesses to atomic-managed fields
// that are neither a sync/atomic argument nor an atomic-typed method
// call.
func flagBareAccesses(p *pass, fields map[*types.Var][]string) {
	for _, file := range p.pkg.Files {
		sanctioned := sanctionedSelectors(p, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldVar(p, sel)
			if v == nil {
				return true
			}
			if _, ok := fields[v]; !ok {
				return true
			}
			p.report(sel.Pos(), "atomicmix",
				"struct field %s is accessed via sync/atomic elsewhere; non-atomic access here races with it", v.Name())
			return true
		})
	}
}

// sanctionedSelectors marks the selector expressions that legitimately
// touch an atomic field: &x.f arguments to sync/atomic functions.
func sanctionedSelectors(p *pass, file *ast.File) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicFunc(calleeFunc(p, call)) {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldVar resolves e to the struct field it selects, or nil.
func fieldVar(p *pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
