package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runLockscope enforces the two locking disciplines the PR 1 review
// established for the sharded ingest path:
//
//  1. Event-engine, notifier and plugin entry points must run with no
//     shard/record/series mutex held: they may synchronously call back
//     into the server (a rule plugin re-ingesting values for the node
//     under evaluation), so calling them under a lock is a latent
//     deadlock.
//  2. A sync.Pool.Get must be paired with a Put (or hand the pooled
//     value off by returning it) on every return path, or the pool
//     silently degrades into an allocator.
//
// The analysis is lexical (statements in source order, one function at
// a time): Lock() opens a held region, a non-deferred Unlock() closes
// it, and a deferred Unlock keeps the region open to the end of the
// function. That is deliberately conservative in the false-negative
// direction — branch-local unlocks end the region early — so it never
// cries wolf on the unlock-before-callback pattern the hot path uses.
func runLockscope(p *pass) {
	for _, file := range p.pkg.Files {
		var funcs []ast.Node
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
		for len(funcs) > 0 {
			fn := funcs[0]
			funcs = funcs[1:]
			var body *ast.BlockStmt
			switch fn := fn.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			funcs = append(funcs, checkLockRegions(p, body)...)
			checkPoolDiscipline(p, body)
		}
	}
}

// checkLockRegions walks one function body in source order tracking held
// mutexes, and returns the nested function literals for independent
// analysis (they execute later, outside this body's lock regions).
func checkLockRegions(p *pass, body *ast.BlockStmt) []ast.Node {
	var nested []ast.Node
	var held []string // names of mutexes currently held, lexically
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
			return true
		case *ast.CallExpr:
			if name, op := mutexOp(p, n); op != "" {
				switch op {
				case "Lock", "RLock":
					held = append(held, name)
				case "Unlock", "RUnlock":
					if !deferred[n] {
						held = removeLock(held, name)
					}
				}
				return true
			}
			if len(held) > 0 {
				if what := reentrantEntry(p, n); what != "" {
					p.report(n.Pos(), "lockscope",
						"%s called while holding %s; event/notify/plugin entry points may re-enter the server and must run with no shard/record/series lock held",
						what, held[len(held)-1])
				}
			}
		}
		return true
	})
	return nested
}

// mutexOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock where m is
// a sync.Mutex or sync.RWMutex (possibly behind a pointer), returning
// the lock's source name and the operation.
func mutexOp(p *pass, call *ast.CallExpr) (name, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	t := p.pkg.Info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if !isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex") {
		return "", ""
	}
	return exprText(sel.X), sel.Sel.Name
}

func removeLock(held []string, name string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == name {
			return append(held[:i], held[i+1:]...)
		}
	}
	if len(held) > 0 {
		return held[:len(held)-1]
	}
	return held
}

// reentrantEntry classifies a call as an entry point that may re-enter
// the management server: event-engine observation, notifier edges,
// mailer delivery, or invoking a function-valued struct field (the
// plugin/callback pattern). Returns a description or "".
func reentrantEntry(p *pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		name := fn.Name()
		switch name {
		case "EventTriggered", "EventCleared":
			return "notifier " + name
		case "Observe", "ObserveMap":
			if recvTypeName(fn) == "Engine" {
				return "event engine " + name
			}
		case "Send":
			recv := recvTypeName(fn)
			if recv == "Mailer" || recv == "MailerFunc" || recv == "Recording" || recvPkgSuffix(fn, "/notify") {
				return "mailer Send"
			}
		}
		return ""
	}
	// A call of a function-typed struct field: the administrator
	// plugin/callback shape (Rule.Plugin, Config.Transport, onError).
	if v := funcValuedField(p, call.Fun); v != nil {
		return "func-valued field " + v.Name()
	}
	return ""
}

func recvPkgSuffix(fn *types.Func, suffix string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedType(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return len(path) >= len(suffix) && path[len(path)-len(suffix):] == suffix
}

// funcValuedField resolves e to a struct field of function type, if that
// is what is being called.
func funcValuedField(p *pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	return v
}

// --- sync.Pool discipline ---------------------------------------------------------

type poolGet struct {
	obj  types.Object // variable the pooled value landed in (nil if discarded)
	pool string
	pos  token.Pos
}

type poolPut struct {
	pool    string
	pos     token.Pos
	inDefer bool
}

// checkPoolDiscipline verifies every sync.Pool.Get in the body has a
// matching Put — deferred, on every later return path, or via ownership
// hand-off (returning the pooled value). Lexical, like the lock check.
func checkPoolDiscipline(p *pass, body *ast.BlockStmt) {
	info := p.pkg.Info
	var gets []poolGet
	var puts []poolPut
	var returns []*ast.ReturnStmt
	deferred := make(map[*ast.CallExpr]bool)
	lastPos := body.End()

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed independently
		case *ast.DeferStmt:
			deferred[n.Call] = true
			if pool, name := poolOp(p, n.Call); name == "Put" {
				puts = append(puts, poolPut{pool: pool, pos: n.Call.Pos(), inDefer: true})
			}
			return true
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call := unwrapToCall(rhs)
				if call == nil {
					continue
				}
				pool, name := poolOp(p, call)
				if name != "Get" {
					continue
				}
				var obj types.Object
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						obj = info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
					}
				}
				gets = append(gets, poolGet{obj: obj, pool: pool, pos: call.Pos()})
			}
		case *ast.CallExpr:
			if pool, name := poolOp(p, n); name == "Put" && !deferred[n] {
				puts = append(puts, poolPut{pool: pool, pos: n.Pos()})
			}
		}
		return true
	})

	for _, g := range gets {
		if hasDeferredPut(puts, g) {
			continue
		}
		covered := false
		for _, ret := range returns {
			if ret.Pos() < g.pos {
				continue
			}
			covered = true
			if returnsObj(info, ret, g.obj) || putBetween(puts, g, g.pos, ret.Pos()) {
				continue
			}
			p.report(ret.Pos(), "lockscope",
				"return without %s.Put for the value from %s.Get (pooled value leaks; Put it, defer the Put, or return it to transfer ownership)",
				g.pool, g.pool)
		}
		if !covered && !putBetween(puts, g, g.pos, lastPos) {
			p.report(g.pos, "lockscope",
				"%s.Get without a matching %s.Put on the function's exit path (pooled value leaks)", g.pool, g.pool)
		}
	}
}

// poolOp recognizes P.Get() / P.Put(x) where P is a sync.Pool.
func poolOp(p *pass, call *ast.CallExpr) (pool, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return "", ""
	}
	t := p.pkg.Info.TypeOf(sel.X)
	if t == nil || !isNamed(t, "sync", "Pool") {
		return "", ""
	}
	return exprText(sel.X), sel.Sel.Name
}

// unwrapToCall peels type assertions and parens off an expression,
// returning the underlying call (pool.Get().(T) is the common shape).
func unwrapToCall(e ast.Expr) *ast.CallExpr {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return t
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func hasDeferredPut(puts []poolPut, g poolGet) bool {
	for _, put := range puts {
		if put.inDefer && put.pool == g.pool && put.pos > g.pos {
			return true
		}
	}
	return false
}

func putBetween(puts []poolPut, g poolGet, from, to token.Pos) bool {
	for _, put := range puts {
		if !put.inDefer && put.pool == g.pool && put.pos > from && put.pos < to {
			return true
		}
	}
	return false
}

func returnsObj(info *types.Info, ret *ast.ReturnStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if info.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}
