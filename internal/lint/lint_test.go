package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation from a `// want `+"`regex`"+` comment in a
// testdata file. The regex is matched against "analyzer: message".
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runTestdata loads one testdata package, runs the full analyzer suite
// over it (mod adjusts the Config for scope-gated analyzers), and diffs
// the findings against the file's want comments in both directions:
// every want must be hit, every finding must be wanted.
func runTestdata(t *testing.T, name string, mod func(*Config)) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	cfg := Config{Module: name, ClockScope: []string{"lint-testdata/none"}, LockScope: []string{"lint-testdata/none"}}
	if mod != nil {
		mod(&cfg)
	}
	diags := Run([]*Package{pkg}, cfg)
	diffWants(t, collectWants(t, pkg), diags)
}

// diffWants cross-checks findings against want expectations.
func diffWants(t *testing.T, wants []*want, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing finding at %s:%d matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants extracts the want comments from a loaded package. The
// expected form is: // want `regex` (one or more backtick-quoted
// regexes per comment).
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				parts := strings.Split(rest, "`")
				if len(parts) < 3 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for i := 1; i+1 < len(parts); i += 2 {
					re, err := regexp.Compile(parts[i])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("testdata package has no want comments")
	}
	return wants
}

func TestHotpathAnalyzer(t *testing.T)  { runTestdata(t, "hotpath", nil) }
func TestClockdetAnalyzer(t *testing.T) { runTestdata(t, "clockdet", clockScoped) }

func TestLockscopeAnalyzer(t *testing.T) { runTestdata(t, "lockscope", nil) }
func TestAtomicmixAnalyzer(t *testing.T) { runTestdata(t, "atomicmix", nil) }
func TestGolifeAnalyzer(t *testing.T)    { runTestdata(t, "golife", nil) }

func TestLockorderAnalyzer(t *testing.T) { runTestdata(t, "lockorder", lockScoped) }

func clockScoped(cfg *Config) { cfg.ClockScope = []string{cfg.Module} }
func lockScoped(cfg *Config)  { cfg.LockScope = []string{cfg.Module} }

// TestStaticallocAnalyzer feeds real compiler escape output to the
// analyzer: the testdata directory is its own module, so the build is
// hermetic, and the //cwx:hotpath escape must be the only finding.
func TestStaticallocAnalyzer(t *testing.T) {
	dir := filepath.Join("testdata", "src", "staticalloc")
	esc, err := GoBuildEscapes(dir, ".")
	if err != nil {
		t.Fatalf("GoBuildEscapes: %v", err)
	}
	if len(esc) == 0 {
		t.Fatal("compiler reported no escapes in testdata; the fixture lost its escape")
	}
	pkg, err := LoadDir(dir, "staticalloc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Module: "staticalloc", ClockScope: []string{"lint-testdata/none"}, LockScope: []string{"lint-testdata/none"}, Escapes: esc}
	diffWants(t, collectWants(t, pkg), Run([]*Package{pkg}, cfg))
}

// TestLockGraphDOT sanity-checks the -lockgraph artifact: both classes
// and the inversion edge of the seeded testdata must render, with the
// inversion painted red.
func TestLockGraphDOT(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "lockorder"), "lockorder")
	if err != nil {
		t.Fatal(err)
	}
	dot := LockGraphDOT([]*Package{pkg}, Config{Module: "lockorder", LockScope: []string{"lockorder"}})
	for _, frag := range []string{
		"digraph cwxlockorder",
		`"alpha" [label="alpha\nlockorder.A.mu\nlevel 10"]`,
		`"alpha" -> "beta"`,
		`"beta" -> "alpha"`,
		"color=red",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("lock graph missing %q:\n%s", frag, dot)
		}
	}
}

// TestDiagnosticJSON pins the -json line format: root-relative file,
// position, analyzer, message, and the baseline key.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Analyzer: "golife", Message: "unguarded send"}
	d.Pos.Filename = filepath.Join("/repo", "internal", "x", "x.go")
	d.Pos.Line, d.Pos.Column = 7, 3
	got := d.JSON("/repo")
	want := `{"file":"internal/x/x.go","line":7,"col":3,"analyzer":"golife","message":"unguarded send","key":"golife: internal/x/x.go: unguarded send"}`
	if got != want {
		t.Errorf("JSON = %s\nwant   %s", got, want)
	}
}

// TestParseBaselineCount pins the " [xN]" occurrence-count grammar.
func TestParseBaselineCount(t *testing.T) {
	for _, tc := range []struct {
		line string
		key  string
		n    int
	}{
		{"a: b.go: msg", "a: b.go: msg", 1},
		{"a: b.go: msg [x3]", "a: b.go: msg", 3},
		{"a: b.go: msg [x0]", "a: b.go: msg [x0]", 1},   // malformed: not a count
		{"a: b.go: msg [xyz]", "a: b.go: msg [xyz]", 1}, // malformed: stays in key
	} {
		key, n := parseBaselineCount(tc.line)
		if key != tc.key || n != tc.n {
			t.Errorf("parseBaselineCount(%q) = %q, %d; want %q, %d", tc.line, key, n, tc.key, tc.n)
		}
	}
}

// TestClockScopeDisabled proves clockdet is scope-gated: the same wall
// clock-ridden testdata is silent when its package is out of scope.
func TestClockScopeDisabled(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "clockdet"), "clockdet")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, Config{Module: "clockdet", ClockScope: []string{"lint-testdata/none"}})
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", diags)
	}
}

// TestBaselineRoundTrip exercises the baseline mechanics on synthetic
// diagnostics: filtering, multiset semantics and stale detection.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	mk := func(file, analyzer, msg string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer, Message: msg}
		d.Pos.Filename = filepath.Join(root, file)
		return d
	}
	accepted := []Diagnostic{
		mk("a.go", "clockdet", "wall clock"),
		mk("a.go", "clockdet", "wall clock"), // same key twice: multiset
		mk("b.go", "hotpath", "fmt allocates"),
	}
	path := filepath.Join(root, BaselineName)
	if err := WriteBaseline(path, root, accepted); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := base["clockdet: a.go: wall clock"]; got != 2 {
		t.Fatalf("multiset count = %d, want 2", got)
	}

	// Current run: one of the two a.go findings is gone (stale), and a
	// brand-new finding appeared (fresh).
	now := []Diagnostic{
		mk("a.go", "clockdet", "wall clock"),
		mk("b.go", "hotpath", "fmt allocates"),
		mk("c.go", "lockscope", "pool leak"),
	}
	fresh, stale := ApplyBaseline(now, root, base)
	if len(fresh) != 1 || fresh[0].Key(root) != "lockscope: c.go: pool leak" {
		t.Fatalf("fresh = %v, want the c.go finding", fresh)
	}
	if len(stale) != 1 || stale[0] != "clockdet: a.go: wall clock" {
		t.Fatalf("stale = %v, want one a.go entry", stale)
	}

	// Missing baseline file reads as empty.
	empty, err := ReadBaseline(filepath.Join(root, "nope"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing baseline: %v %v", empty, err)
	}
}

// TestRepoClean runs the full suite over this repository exactly as
// `make lint` does: with the checked-in baseline applied, the tree must
// be free of fresh findings and the baseline free of stale entries.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, module, err := lintLoad(root)
	if err != nil {
		t.Fatal(err)
	}
	esc, err := GoBuildEscapes(root, "./...")
	if err != nil {
		t.Fatalf("GoBuildEscapes: %v", err)
	}
	diags := Run(pkgs, Config{Module: module, Escapes: esc})
	base, err := ReadBaseline(filepath.Join(root, BaselineName))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := ApplyBaseline(diags, root, base)
	for _, d := range fresh {
		t.Errorf("fresh finding: %s", d)
	}
	for _, k := range stale {
		t.Errorf("stale baseline entry: %s", k)
	}
	if len(pkgs) < 10 {
		t.Errorf("loaded only %d packages; loader is missing part of the module", len(pkgs))
	}
}

// lintLoad is Load with a friendlier test failure message.
func lintLoad(root string) ([]*Package, string, error) {
	pkgs, module, err := Load(root)
	if err != nil {
		return nil, "", fmt.Errorf("Load(%s): %w", root, err)
	}
	return pkgs, module, nil
}
