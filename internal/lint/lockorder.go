package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// runLockorder is the whole-program lock-ordering analyzer. The repo's
// ten mutex-bearing packages share one declared partial order — the
// lock-rank lattice (shard < record < series < gate < hub plus the
// auxiliary ranks around them) — expressed as "//cwx:lockrank <name>
// <level>" directives on the mutex fields themselves. The analyzer:
//
//  1. classifies every sync.Mutex/RWMutex struct field into a lock
//     class (one class per field declaration, shared by all instances
//     — two records locked at once is the same inversion as record
//     before shard);
//  2. tracks, lexically per function, which classes are held at every
//     acquisition and at every call (same source-order discipline as
//     lockscope: a deferred Unlock keeps the region open, a branch-
//     local Unlock closes it early);
//  3. propagates acquisitions interprocedurally through the call graph
//     of resolved static callees to a fixpoint, so "holds record,
//     calls Store.Append which locks the series" becomes a
//     record→series edge with the full witness call chain;
//  4. reports every edge that acquires a ranked class at a level <=
//     one already held — an inversion of the declared order, or a
//     same-class re-entry (self-deadlock for plain mutexes) — plus any
//     cycle among classified-but-unranked locks;
//  5. requires every mutex field in the LockScope packages to carry a
//     directive, so the lattice cannot silently erode.
//
// Known blind spots, shared with lockscope and deliberate: calls
// through interfaces and func-valued fields (the serve.Gate Build
// callback, plugins, mailers) are not traced, and goroutine spawns do
// not propagate the spawner's held set (the new goroutine starts
// empty). The directive levels encode the order the visible call graph
// must respect.

// lockClass is one mutex field declaration: the unit of lock identity.
type lockClass struct {
	obj    types.Object // the field var (generic origin)
	owner  string       // "pkg.Struct.field" for messages
	rank   string       // directive name ("" when unranked)
	level  int
	ranked bool
}

func (c *lockClass) String() string {
	if c.ranked {
		return c.rank
	}
	return c.owner
}

// lockAcq is one direct Lock/RLock with the classes held at that point.
type lockAcq struct {
	class *lockClass
	pos   token.Pos
	held  []*lockClass
}

// lockCall is one resolved static call with the classes held at it.
type lockCall struct {
	callee *types.Func
	pos    token.Pos
	held   []*lockClass
}

// lockFunc is the per-function unit: a declaration or a function
// literal (literals start with an empty held set — they run later,
// outside the creating function's lock regions).
type lockFunc struct {
	fn    *types.Func // nil for literals
	pass  *pass
	name  string
	acqs  []lockAcq
	calls []lockCall
}

// lockEdge is "to acquired while from was held", with one witness: the
// positions of the call chain from the holding function down to the
// acquisition.
type lockEdge struct {
	from, to *lockClass
	pos      token.Pos   // report position (outermost frame)
	witness  []token.Pos // call chain, ending at the Lock call
	inFunc   string
}

// lockAnalysis is the assembled whole-program view; LockGraphDOT
// renders it, runLockorder reports on it.
type lockAnalysis struct {
	prog    *program
	classes []*lockClass
	byPos   map[token.Pos]*lockClass
	funcs   []*lockFunc
	edges   []*lockEdge
}

func runLockorder(prog *program) {
	a := analyzeLocks(prog)
	a.checkCoverage()
	a.checkOrder()
}

// analyzeLocks builds classes, per-function acquisition records, and
// the interprocedural edge set.
func analyzeLocks(prog *program) *lockAnalysis {
	a := &lockAnalysis{prog: prog, byPos: make(map[token.Pos]*lockClass)}
	for _, p := range prog.passes {
		a.collectClasses(p)
	}
	for _, p := range prog.passes {
		a.collectFuncs(p)
	}
	a.propagate()
	return a
}

// --- class discovery --------------------------------------------------------------

// collectClasses finds every mutex struct field and its //cwx:lockrank
// directive (on the field's own line or in its doc comment).
func (a *lockAnalysis) collectClasses(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := p.pkg.Info.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						continue
					}
					cls := &lockClass{
						obj:   obj,
						owner: p.pkg.Pkg.Name() + "." + ts.Name.Name + "." + name.Name,
					}
					if rank, level, ok := lockrankDirective(field); ok {
						cls.rank, cls.level, cls.ranked = rank, level, true
					}
					a.classes = append(a.classes, cls)
					a.byPos[obj.Pos()] = cls
				}
			}
			return true
		})
	}
}

func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// lockrankDirective parses "//cwx:lockrank <name> <level>" from a
// field's trailing comment or doc comment.
func lockrankDirective(field *ast.Field) (rank string, level int, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, "//cwx:lockrank")
			if !found {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			return fields[0], n, true
		}
	}
	return "", 0, false
}

// checkCoverage requires a directive on every mutex field of the
// LockScope packages, and consistent levels for shared rank names.
func (a *lockAnalysis) checkCoverage() {
	scope := make(map[string]bool, len(a.prog.cfg.LockScope))
	for _, s := range a.prog.cfg.LockScope {
		scope[s] = true
	}
	levels := make(map[string]*lockClass)
	for _, cls := range a.classes {
		if cls.ranked {
			if prev, ok := levels[cls.rank]; ok && prev.level != cls.level {
				a.prog.report(cls.obj.Pos(), "lockorder",
					"lockrank %q declared at level %d here but level %d on %s; one rank name, one level",
					cls.rank, cls.level, prev.level, prev.owner)
			} else {
				levels[cls.rank] = cls
			}
			continue
		}
		if pkg := cls.obj.Pkg(); pkg != nil && scope[pkg.Path()] {
			a.prog.report(cls.obj.Pos(), "lockorder",
				"mutex field %s has no //cwx:lockrank directive; every lock in this package must declare its place in the acquisition order",
				cls.owner)
		}
	}
}

// --- per-function acquisition tracking --------------------------------------------

// collectFuncs walks every function (and, as independent units, every
// function literal) recording acquisitions and resolved calls together
// with the lexically-held class set.
func (a *lockAnalysis) collectFuncs(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.pkg.Info.Defs[fd.Name].(*types.Func)
			name := fd.Name.Name
			if recv := recvTypeName2(fn); recv != "" {
				name = recv + "." + name
			}
			a.walkFunc(p, fn, name, fd.Body)
		}
	}
}

func recvTypeName2(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return recvTypeName(fn)
}

// walkFunc analyzes one body lexically, queueing nested literals as
// their own units.
func (a *lockAnalysis) walkFunc(p *pass, fn *types.Func, name string, body *ast.BlockStmt) {
	type unit struct {
		fn   *types.Func
		name string
		body *ast.BlockStmt
	}
	queue := []unit{{fn, name, body}}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		lf := &lockFunc{fn: u.fn, pass: p, name: u.name}
		var held []*lockClass
		deferred := make(map[*ast.CallExpr]bool)
		goCalls := make(map[*ast.CallExpr]bool)
		ast.Inspect(u.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				queue = append(queue, unit{nil, u.name + ".func", n.Body})
				return false
			case *ast.DeferStmt:
				deferred[n.Call] = true
				return true
			case *ast.GoStmt:
				// The spawned call runs on a fresh goroutine with no
				// inherited locks; only its argument expressions are
				// evaluated here.
				goCalls[n.Call] = true
				return true
			case *ast.CallExpr:
				if cls, op := a.classOp(p, n); op != "" {
					switch op {
					case "Lock", "RLock":
						if cls != nil {
							lf.acqs = append(lf.acqs, lockAcq{class: cls, pos: n.Pos(), held: append([]*lockClass(nil), held...)})
							held = append(held, cls)
						}
					case "Unlock", "RUnlock":
						if cls != nil && !deferred[n] {
							held = removeClass(held, cls)
						}
					}
					return true
				}
				if goCalls[n] {
					return true
				}
				if callee := calleeFunc(p, n); callee != nil {
					callee = callee.Origin()
					h := held
					if deferred[n] {
						// Deferred calls run at return, when branch-local
						// unlocks have all fired; only count them for the
						// transitive summary, not for held-edges.
						h = nil
					}
					lf.calls = append(lf.calls, lockCall{callee: callee, pos: n.Pos(), held: append([]*lockClass(nil), h...)})
				}
			}
			return true
		})
		a.funcs = append(a.funcs, lf)
	}
}

// classOp recognizes c.Lock/RLock/Unlock/RUnlock on a classified mutex
// field; op is "" for non-mutex calls, cls nil for unclassified
// (local-variable) mutexes.
func (a *lockAnalysis) classOp(p *pass, call *ast.CallExpr) (*lockClass, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	t := p.pkg.Info.TypeOf(sel.X)
	if t == nil || !isMutexType(t) {
		return nil, ""
	}
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := p.pkg.Info.Selections[x]; ok {
			obj = s.Obj()
		} else {
			obj = p.pkg.Info.Uses[x.Sel]
		}
	case *ast.Ident:
		obj = p.pkg.Info.Uses[x]
		if obj == nil {
			obj = p.pkg.Info.Defs[x]
		}
	}
	if obj == nil {
		return nil, sel.Sel.Name
	}
	return a.byPos[obj.Pos()], sel.Sel.Name
}

func removeClass(held []*lockClass, cls *lockClass) []*lockClass {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == cls {
			return append(held[:i], held[i+1:]...)
		}
	}
	if len(held) > 0 {
		return held[:len(held)-1]
	}
	return held
}

// --- interprocedural propagation --------------------------------------------------

// witness is the call chain (positions) leading to an acquisition.
type witness []token.Pos

const maxWitness = 8

// summaries computes, per named function, every class it may acquire
// transitively, to a fixpoint (recursion converges because the class
// set only grows).
func (a *lockAnalysis) summaries() map[*types.Func]map[*lockClass]witness {
	sums := make(map[*types.Func]map[*lockClass]witness)
	add := func(fn *types.Func, cls *lockClass, w witness) bool {
		m := sums[fn]
		if m == nil {
			m = make(map[*lockClass]witness)
			sums[fn] = m
		}
		if _, ok := m[cls]; ok {
			return false
		}
		if len(w) > maxWitness {
			w = w[:maxWitness]
		}
		m[cls] = w
		return true
	}
	for _, lf := range a.funcs {
		if lf.fn == nil {
			continue
		}
		for _, acq := range lf.acqs {
			add(lf.fn, acq.class, witness{acq.pos})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, lf := range a.funcs {
			if lf.fn == nil {
				continue
			}
			for _, call := range lf.calls {
				for cls, w := range sums[call.callee] {
					if add(lf.fn, cls, append(witness{call.pos}, w...)) {
						changed = true
					}
				}
			}
		}
	}
	return sums
}

func (a *lockAnalysis) propagate() {
	sums := a.summaries()
	seen := make(map[[2]*lockClass]bool)
	record := func(from, to *lockClass, pos token.Pos, w witness, in string) {
		key := [2]*lockClass{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		a.edges = append(a.edges, &lockEdge{from: from, to: to, pos: pos, witness: w, inFunc: in})
	}
	for _, lf := range a.funcs {
		for _, acq := range lf.acqs {
			for _, h := range acq.held {
				record(h, acq.class, acq.pos, witness{acq.pos}, lf.name)
			}
		}
		for _, call := range lf.calls {
			if len(call.held) == 0 {
				continue
			}
			for cls, w := range sums[call.callee] {
				for _, h := range call.held {
					record(h, cls, call.pos, append(witness{call.pos}, w...), lf.name)
				}
			}
		}
	}
	sort.Slice(a.edges, func(i, j int) bool { return a.edges[i].pos < a.edges[j].pos })
}

// --- reporting --------------------------------------------------------------------

// checkOrder reports rank inversions and unranked cycles.
func (a *lockAnalysis) checkOrder() {
	for _, e := range a.edges {
		if !e.from.ranked || !e.to.ranked {
			continue
		}
		if e.from == e.to {
			a.prog.report(e.pos, "lockorder",
				"lock %s (%s, level %d) acquired while already held in %s (self-deadlock for plain mutexes, order violation for two instances)%s",
				e.to.rank, e.to.owner, e.to.level, e.inFunc, a.renderWitness(e))
			continue
		}
		if e.to.level <= e.from.level {
			a.prog.report(e.pos, "lockorder",
				"lock order inversion in %s: acquiring %s (%s, level %d) while holding %s (%s, level %d); declared order requires strictly increasing levels%s",
				e.inFunc, e.to.rank, e.to.owner, e.to.level, e.from.rank, e.from.owner, e.from.level, a.renderWitness(e))
		}
	}
	a.checkCycles()
}

// checkCycles finds acquisition cycles that rank checking cannot see
// because at least one participant is unranked. Self-edges of unranked
// classes are excluded: the unlock-relock helper pattern (internal/
// clock's callback dispatch) reads as a lexical self-edge.
func (a *lockAnalysis) checkCycles() {
	adj := make(map[*lockClass][]*lockEdge)
	for _, e := range a.edges {
		if e.from == e.to {
			continue
		}
		adj[e.from] = append(adj[e.from], e)
	}
	// DFS with a path stack; report each cycle once, at its first edge.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*lockClass]int)
	var stack []*lockEdge
	reported := make(map[*lockClass]bool)
	var visit func(c *lockClass)
	visit = func(c *lockClass) {
		color[c] = gray
		for _, e := range adj[c] {
			switch color[e.to] {
			case white:
				stack = append(stack, e)
				visit(e.to)
				stack = stack[:len(stack)-1]
			case gray:
				// Cycle: the stack suffix from e.to back to c, plus e.
				var cyc []*lockEdge
				for i := 0; i < len(stack); i++ {
					if len(cyc) > 0 || stack[i].from == e.to {
						cyc = append(cyc, stack[i])
					}
				}
				cyc = append(cyc, e)
				ranked := true
				for _, ce := range cyc {
					if !ce.from.ranked || !ce.to.ranked {
						ranked = false
					}
				}
				if ranked || reported[e.to] {
					continue // rank inversion reporting already covers it
				}
				reported[e.to] = true
				var names []string
				for _, ce := range cyc {
					names = append(names, ce.from.String())
				}
				names = append(names, e.to.String())
				a.prog.report(cyc[0].pos, "lockorder",
					"lock acquisition cycle %s; declare //cwx:lockrank directives so the order is checkable",
					strings.Join(names, " -> "))
			}
		}
		color[c] = black
	}
	var roots []*lockClass
	for c := range adj {
		roots = append(roots, c)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].owner < roots[j].owner })
	for _, c := range roots {
		if color[c] == white {
			visit(c)
		}
	}
}

// renderWitness formats the call chain as " [witness: file:line -> ...]"
// with basenames, compact enough for one diagnostic line.
func (a *lockAnalysis) renderWitness(e *lockEdge) string {
	if len(e.witness) == 0 {
		return ""
	}
	parts := make([]string, 0, len(e.witness))
	for _, pos := range e.witness {
		p := a.prog.fset.Position(pos)
		parts = append(parts, fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line))
	}
	return " [witness: " + strings.Join(parts, " -> ") + "]"
}

// --- DOT export -------------------------------------------------------------------

// LockGraphDOT renders the whole-program lock-acquisition graph as
// Graphviz DOT: one node per lock class (ranked classes labeled with
// their level, unranked dashed), one edge per acquired-while-held pair
// (its witness head as the edge label), inversions red. This is the
// `cwxlint -lockgraph` artifact CI uploads on every run.
func LockGraphDOT(pkgs []*Package, cfg Config) string {
	if len(cfg.LockScope) == 0 && cfg.Module != "" {
		cfg.LockScope = DefaultLockScope(cfg.Module)
	}
	var diags []Diagnostic
	passes := make([]*pass, 0, len(pkgs))
	for _, pkg := range pkgs {
		passes = append(passes, &pass{pkg: pkg, cfg: &cfg, allows: collectAllows(pkg), diags: &diags})
	}
	prog := buildProgram(passes, &cfg, &diags)
	a := analyzeLocks(prog)

	var b strings.Builder
	b.WriteString("digraph cwxlockorder {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	classes := append([]*lockClass(nil), a.classes...)
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].ranked != classes[j].ranked {
			return classes[i].ranked
		}
		if classes[i].level != classes[j].level {
			return classes[i].level < classes[j].level
		}
		return classes[i].owner < classes[j].owner
	})
	for _, c := range classes {
		if c.ranked {
			fmt.Fprintf(&b, "\t%q [label=\"%s\\n%s\\nlevel %d\"];\n", c.String(), c.rank, c.owner, c.level)
		} else {
			fmt.Fprintf(&b, "\t%q [label=%q, style=dashed];\n", c.String(), c.owner)
		}
	}
	for _, e := range a.edges {
		pos := prog.fset.Position(e.pos)
		attrs := fmt.Sprintf("label=\"%s:%d\"", filepath.Base(pos.Filename), pos.Line)
		if e.from.ranked && e.to.ranked && e.to.level <= e.from.level {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "\t%q -> %q [%s];\n", e.from.String(), e.to.String(), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
