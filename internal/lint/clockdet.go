package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the time-package entry points that read or schedule
// on the wall clock. Inside simulation-scoped packages every one of them
// silently decouples behavior from the virtual clock: a time.Sleep in an
// event callback stalls the whole discrete-event loop, and a time.Now
// mixed into simulated state makes fault-injection runs unreproducible.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// seededRandCtors are the math/rand package-level functions that build
// explicitly seeded generators — the fix clockdet points at, so they are
// exempt.
var seededRandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// runClockdet flags wall-clock reads and global (unseeded) math/rand use
// inside the simulation-scoped packages. Intentional wall-clock reads —
// telemetry that measures real CPU cost a virtual clock would report as
// zero — carry an inline //cwx:allow clockdet with the reason.
func runClockdet(p *pass) {
	if !inClockScope(p.pkg.Path, p.cfg.ClockScope) {
		return
	}
	for _, file := range p.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand or a clock.Clock) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.report(call.Pos(), "clockdet",
						"time.%s bypasses the virtual clock in a simulation-scoped package (use internal/clock, or //cwx:allow clockdet for intentional wall-clock telemetry)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[fn.Name()] {
					p.report(call.Pos(), "clockdet",
						"global math/rand %s is process-global and unseeded here; use a rand.New(rand.NewSource(seed)) instance so runs reproduce", fn.Name())
				}
			}
			return true
		})
	}
}

func inClockScope(path string, scope []string) bool {
	for _, prefix := range scope {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}
