package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runHotpath enforces the //cwx:hotpath contract: the annotated function
// body must be free of allocating constructs. The ingest, framing and
// telemetry-recording paths carry this annotation; the E15/E18 0-alloc
// benchmark results are the empirical side of the same invariant, this
// analyzer is the structural side.
func runHotpath(p *pass) {
	for _, file := range p.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "//cwx:hotpath") {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func checkHotFunc(p *pass, fd *ast.FuncDecl) {
	info := p.pkg.Info
	blessed := blessedSlices(p, fd)
	nowCalls := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(p, fd, n); name != "" {
				p.report(n.Pos(), "hotpath", "closure capturing %q allocates on the hot path", name)
			}
			return false // the literal runs later; its body is not this call's hot path
		case *ast.CallExpr:
			checkHotCall(p, n, blessed, &nowCalls)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && info.Types[n].Value == nil && (isStringType(info, n.X) || isStringType(info, n.Y)) {
				p.report(n.Pos(), "hotpath", "string concatenation allocates on the hot path (append to a reusable []byte instead)")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				p.report(n.Pos(), "hotpath", "string concatenation allocates on the hot path (append to a reusable []byte instead)")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				p.report(n.Pos(), "hotpath", "map literal allocates on the hot path (hoist to setup or pool it)")
			case *types.Slice:
				p.report(n.Pos(), "hotpath", "slice literal allocates on the hot path (hoist to setup or reuse scratch)")
			}
		}
		return true
	})
}

func checkHotCall(p *pass, call *ast.CallExpr, blessed map[types.Object]bool, nowCalls *int) {
	info := p.pkg.Info
	// Type conversions between strings and byte/rune slices copy.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.TypeOf(call.Args[0])
		if from != nil {
			switch {
			case isStringKind(to) && isByteOrRuneSlice(from.Underlying()):
				p.report(call.Pos(), "hotpath", "byte slice to string conversion allocates on the hot path")
			case isByteOrRuneSlice(to) && isStringKind(from.Underlying()):
				p.report(call.Pos(), "hotpath", "string to []byte conversion allocates on the hot path")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 && !blessedAppendDst(p, call.Args[0], blessed) {
				p.report(call.Pos(), "hotpath",
					"append to %s without preallocated-cap evidence (reslice a scratch buffer or make with capacity)",
					exprText(call.Args[0]))
			}
			return
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.report(call.Pos(), "hotpath", "fmt.%s allocates on the hot path (use strconv.Append* or append)", fn.Name())
		return
	}
	if isPkgFunc(fn, "time", "Now") {
		*nowCalls++
		if *nowCalls > 1 {
			p.report(call.Pos(), "hotpath", "more than one time.Now per hot call (share one timestamp across measurements)")
		}
	}
}

// blessedSlices computes the set of slice variables a hot function may
// append to: parameters (the caller owns their capacity), reslicings of
// existing storage (x[:0] scratch reuse), sized makes, and chains of
// appends rooted in one of those. Iterated to a fixpoint so ordering in
// the source does not matter.
func blessedSlices(p *pass, fd *ast.FuncDecl) map[types.Object]bool {
	info := p.pkg.Info
	blessed := make(map[types.Object]bool)
	addIdent := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				blessed[obj] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				addIdent(name)
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			addIdent(name)
		}
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				obj := objOf(lhs)
				if obj == nil || blessed[obj] {
					continue
				}
				if blessedAppendDst(p, as.Rhs[i], blessed) {
					blessed[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return blessed
}

// blessedAppendDst reports whether e shows preallocated-cap evidence as
// an append destination.
func blessedAppendDst(p *pass, e ast.Expr, blessed map[types.Object]bool) bool {
	info := p.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true // reslicing existing storage: buf[:0], buf[:n]
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && blessed[obj]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					return len(e.Args) > 0 && blessedAppendDst(p, e.Args[0], blessed)
				case "make":
					// make([]T, n, c) or make([]T, n) with a non-zero
					// length is sizing evidence; make([]T, 0) is not.
					if len(e.Args) >= 3 {
						return true
					}
					if len(e.Args) == 2 {
						if tv, ok := info.Types[e.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
							return false
						}
						return true
					}
				}
			}
		}
	}
	return false
}

// capturedVar returns the name of a variable the function literal
// captures from the enclosing hot function, or "" when it captures
// nothing (a static closure, which does not allocate).
func capturedVar(p *pass, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	info := p.pkg.Info
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= outer.Pos() && v.Pos() < outer.End() && !(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			found = v.Name()
		}
		return true
	})
	return found
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringKind(t.Underlying())
}

func isStringKind(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
