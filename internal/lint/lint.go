// Package lint is cwxlint: a dependency-free static-analysis suite that
// mechanically enforces the repository's performance, determinism, and
// concurrency invariants — the properties the §5.3 "minimal
// intrusiveness" claim rests on, which PRs 1–3 established by hand.
//
// Per-function analyzers:
//
//   - hotpath: a function marked //cwx:hotpath must not contain
//     allocating constructs (fmt calls, string<->[]byte conversions,
//     string concatenation, map/slice literals, capturing closures,
//     append without preallocated-cap evidence) and at most one direct
//     time.Now read per call.
//   - clockdet: simulation-scoped packages must go through
//     internal/clock and seeded rand.Rand instances, never the wall
//     clock or the global math/rand state, so every simulation and
//     fault-injection run is reproducible.
//   - lockscope: event-engine / notifier / plugin entry points must not
//     be called while a shard/record/series mutex is held, and every
//     sync.Pool.Get needs a Put (or an ownership hand-off) on every
//     return path — the exact bug classes fixed in the PR 1 review.
//   - atomicmix: a struct field accessed through sync/atomic anywhere
//     must never be read or written non-atomically elsewhere.
//
// Whole-program analyzers (interprocedural, over the full loaded
// module):
//
//   - lockorder: every sync.Mutex/RWMutex struct field in the
//     lock-scoped packages carries a "//cwx:lockrank <name> <level>"
//     directive; acquisitions are propagated through the call graph and
//     any edge that acquires a lock at a level <= one already held
//     (an inversion of the declared partial order, or a same-class
//     re-entry) is reported with its full witness call chain. The graph
//     is dumpable as DOT (cwxlint -lockgraph).
//   - golife: every `go` statement must have provable shutdown — an
//     exit path out of every unbounded loop or a //cwx:daemon
//     annotation — and every channel send lexically inside a spawned
//     goroutine must be select-guarded or provably buffered.
//   - staticalloc: heap escapes reported by the compiler
//     (go build -gcflags=-m) inside //cwx:hotpath functions fail the
//     lint run, turning the runtime alloc-gate tests into a
//     compile-time proof.
//
// Findings are suppressed either inline ("//cwx:allow <analyzers> --
// reason" on the flagged line or the line above) or through a baseline
// file listing pre-existing accepted findings, so accepted exceptions
// are explicit rather than silent.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line:col form editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// JSON renders the finding as one self-contained JSON object (the
// cwxlint -json line format for editor and CI integration). The file is
// root-relative when the finding is under root; key is the baseline
// identity so tooling can acknowledge findings without re-deriving it.
func (d Diagnostic) JSON(root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	j, _ := json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Key      string `json:"key"`
	}{file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, d.Key(root)})
	return string(j)
}

// Key is the position-independent identity used by the baseline file:
// analyzer, root-relative file, and message — no line numbers, so the
// baseline survives unrelated edits to the same file.
func (d Diagnostic) Key(root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s: %s: %s", d.Analyzer, file, d.Message)
}

// Config tunes an analysis run.
type Config struct {
	// ClockScope lists the import-path prefixes clockdet applies to.
	// Empty means the default simulation-scoped set under Module.
	ClockScope []string
	// LockScope lists the packages in which every sync.Mutex/RWMutex
	// struct field must carry a //cwx:lockrank directive. Empty means
	// the default mutex-bearing set under Module.
	LockScope []string
	// Escapes is the parsed compiler escape-analysis output staticalloc
	// checks against //cwx:hotpath functions (see GoBuildEscapes). Nil
	// skips the analyzer — it needs a build, which Run cannot do itself.
	Escapes []EscapeLine
	// Module is the module path, used to derive the default scopes.
	Module string
}

// DefaultClockScope returns the packages whose time sources must be the
// virtual clock: the simulation core and the engines whose behavior
// fault-injection runs replay deterministically.
func DefaultClockScope(module string) []string {
	return []string{
		module + "/internal/core",
		module + "/internal/simnet",
		module + "/internal/events",
		module + "/internal/notify",
	}
}

// DefaultLockScope returns the mutex-bearing packages whose locks form
// the pipeline's declared acquisition order (shard → record → series →
// gate → hub and the auxiliary ranks around them): every mutex field in
// them must carry a //cwx:lockrank directive.
func DefaultLockScope(module string) []string {
	return []string{
		module + "/internal/core",
		module + "/internal/history",
		module + "/internal/serve",
		module + "/internal/flight",
		module + "/internal/transmit",
		module + "/internal/telemetry",
		module + "/internal/events",
		module + "/internal/notify",
		module + "/internal/consolidate",
	}
}

// pass is one package plus its resolved suppression directives.
type pass struct {
	pkg    *Package
	cfg    *Config
	allows map[string]map[int][]string // file -> line -> allowed analyzers
	diags  *[]Diagnostic
}

func (p *pass) report(pos token.Pos, analyzer, format string, args ...any) {
	position := p.pkg.Fset.Position(pos)
	if p.allowed(position, analyzer) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowed reports whether an inline //cwx:allow directive on the finding
// line (trailing comment) or the line directly above covers analyzer.
func (p *pass) allowed(pos token.Position, analyzer string) bool {
	lines := p.allows[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Run executes every analyzer over pkgs and returns the findings sorted
// by position. Inline //cwx:allow suppressions are already applied;
// baseline filtering is the caller's concern (see ApplyBaseline).
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	if len(cfg.ClockScope) == 0 && cfg.Module != "" {
		cfg.ClockScope = DefaultClockScope(cfg.Module)
	}
	if len(cfg.LockScope) == 0 && cfg.Module != "" {
		cfg.LockScope = DefaultLockScope(cfg.Module)
	}
	var diags []Diagnostic
	passes := make([]*pass, 0, len(pkgs))
	for _, pkg := range pkgs {
		passes = append(passes, &pass{pkg: pkg, cfg: &cfg, allows: collectAllows(pkg), diags: &diags})
	}
	for _, p := range passes {
		runHotpath(p)
		runClockdet(p)
		runLockscope(p)
	}
	runAtomicmix(passes)
	prog := buildProgram(passes, &cfg, &diags)
	runLockorder(prog)
	runGolife(prog)
	runStaticalloc(prog)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// program is the whole-module view the interprocedural analyzers
// (lockorder, golife, staticalloc) share: one FileSet, every pass, a
// declaration index for call-graph resolution, and the merged
// suppression directives.
type program struct {
	fset    *token.FileSet
	passes  []*pass
	cfg     *Config
	decls   map[*types.Func]*declInfo   // named funcs/methods with bodies
	allows  map[string]map[int][]string // merged across passes
	daemons map[string]map[int]bool     // file -> line -> //cwx:daemon present
	diags   *[]Diagnostic
}

// declInfo ties a function object to its syntax and owning pass.
type declInfo struct {
	pass *pass
	decl *ast.FuncDecl
}

// buildProgram indexes every function declaration (keyed by its
// *types.Func so cross-package calls resolve — the loader type-checks
// local packages once, so objects are shared) plus the //cwx:daemon
// spawn annotations.
func buildProgram(passes []*pass, cfg *Config, diags *[]Diagnostic) *program {
	prog := &program{
		passes:  passes,
		cfg:     cfg,
		decls:   make(map[*types.Func]*declInfo),
		allows:  make(map[string]map[int][]string),
		daemons: make(map[string]map[int]bool),
		diags:   diags,
	}
	for _, p := range passes {
		if prog.fset == nil {
			prog.fset = p.pkg.Fset
		}
		for file, lines := range p.allows {
			if prog.allows[file] == nil {
				prog.allows[file] = lines
			}
		}
		for _, f := range p.pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.decls[fn] = &declInfo{pass: p, decl: fd}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if c.Text == "//cwx:daemon" || strings.HasPrefix(c.Text, "//cwx:daemon ") {
						pos := p.pkg.Fset.Position(c.Pos())
						if prog.daemons[pos.Filename] == nil {
							prog.daemons[pos.Filename] = make(map[int]bool)
						}
						prog.daemons[pos.Filename][pos.Line] = true
					}
				}
			}
		}
	}
	return prog
}

// declOf resolves a call target to its declaration, mapping generic
// instantiations back to their origin.
func (prog *program) declOf(fn *types.Func) *declInfo {
	if fn == nil {
		return nil
	}
	return prog.decls[fn.Origin()]
}

// report records a finding at a resolved position unless an inline
// //cwx:allow covers it.
func (prog *program) report(pos token.Pos, analyzer, format string, args ...any) {
	prog.reportAt(prog.fset.Position(pos), analyzer, format, args...)
}

func (prog *program) reportAt(position token.Position, analyzer, format string, args ...any) {
	lines := prog.allows[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return
			}
		}
	}
	*prog.diags = append(*prog.diags, Diagnostic{
		Pos:      position,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// daemonAt reports whether a //cwx:daemon annotation covers a spawn
// site (same line or the line above the `go` statement).
func (prog *program) daemonAt(pos token.Pos) bool {
	position := prog.fset.Position(pos)
	lines := prog.daemons[position.Filename]
	return lines[position.Line] || lines[position.Line-1]
}

// collectAllows indexes every "//cwx:allow a,b -- reason" comment by
// file and line.
func collectAllows(pkg *Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//cwx:allow")
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(rest), "--")
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return out
}

// hasDirective reports whether a doc comment carries the given marker
// line (e.g. "//cwx:hotpath").
func hasDirective(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// --- baseline ---------------------------------------------------------------------

// BaselineName is the root-relative findings baseline: accepted
// pre-existing findings, one Diagnostic.Key per line. Findings in it are
// filtered from the report; entries no longer produced are flagged as
// stale so the file cannot rot silently.
const BaselineName = ".cwxlint-baseline"

// ReadBaseline loads a baseline file into a key -> count multiset. A
// missing file is an empty baseline. Two identical findings in the same
// file share one Diagnostic.Key, so an entry may carry an explicit
// occurrence count ("<key> [x3]"); without one it acknowledges exactly
// one occurrence — a fresh duplicate of a baselined finding still
// reports. Repeated identical lines also accumulate.
func ReadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	base := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, n := parseBaselineCount(line)
		base[key] += n
	}
	return base, nil
}

// parseBaselineCount splits an optional trailing " [xN]" occurrence
// count off a baseline entry. Malformed suffixes stay part of the key.
func parseBaselineCount(line string) (string, int) {
	i := strings.LastIndex(line, " [x")
	if i < 0 || !strings.HasSuffix(line, "]") {
		return line, 1
	}
	n := 0
	for _, r := range line[i+3 : len(line)-1] {
		if r < '0' || r > '9' {
			return line, 1
		}
		n = n*10 + int(r-'0')
	}
	if n < 1 {
		return line, 1
	}
	return line[:i], n
}

// ApplyBaseline splits diags into fresh findings and consumed baseline
// hits, returning the fresh findings plus any stale baseline entries.
func ApplyBaseline(diags []Diagnostic, root string, base map[string]int) (fresh []Diagnostic, stale []string) {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	for _, d := range diags {
		key := d.Key(root)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// WriteBaseline renders diags as a baseline file. Findings sharing one
// key (identical message, same file) are written once with an explicit
// occurrence count, so the multiset is visible — and editable — rather
// than encoded as easily-deduplicated repeated lines.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	var b strings.Builder
	b.WriteString("# cwxlint findings baseline: accepted pre-existing findings, one per line.\n")
	b.WriteString("# \"<key> [xN]\" acknowledges exactly N identical occurrences.\n")
	b.WriteString("# Regenerate with `go run ./cmd/cwxlint -update-baseline`.\n")
	counts := make(map[string]int, len(diags))
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		k := d.Key(root)
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k]++
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		if n := counts[k]; n > 1 {
			fmt.Fprintf(&b, " [x%d]", n)
		}
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// --- shared type helpers ----------------------------------------------------------

// calleeFunc resolves the function or method a call dispatches to, or
// nil for builtins, conversions and calls of function-typed values.
func calleeFunc(p *pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvTypeName returns the bare type name of a method's receiver ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedType dereferences pointers and returns the named type of t, if any.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// exprText renders a short source-ish form of an expression for
// messages, without line numbers so baseline keys stay stable.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	}
	return "expr"
}
