// Package lint is cwxlint: a dependency-free static-analysis suite that
// mechanically enforces the repository's performance and determinism
// invariants — the properties the §5.3 "minimal intrusiveness" claim
// rests on, which PRs 1–3 established by hand:
//
//   - hotpath: a function marked //cwx:hotpath must not contain
//     allocating constructs (fmt calls, string<->[]byte conversions,
//     string concatenation, map/slice literals, capturing closures,
//     append without preallocated-cap evidence) and at most one direct
//     time.Now read per call.
//   - clockdet: simulation-scoped packages must go through
//     internal/clock and seeded rand.Rand instances, never the wall
//     clock or the global math/rand state, so every simulation and
//     fault-injection run is reproducible.
//   - lockscope: event-engine / notifier / plugin entry points must not
//     be called while a shard/record/series mutex is held, and every
//     sync.Pool.Get needs a Put (or an ownership hand-off) on every
//     return path — the exact bug classes fixed in the PR 1 review.
//   - atomicmix: a struct field accessed through sync/atomic anywhere
//     must never be read or written non-atomically elsewhere.
//
// Findings are suppressed either inline ("//cwx:allow <analyzers> --
// reason" on the flagged line or the line above) or through a baseline
// file listing pre-existing accepted findings, so accepted exceptions
// are explicit rather than silent.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line:col form editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Key is the position-independent identity used by the baseline file:
// analyzer, root-relative file, and message — no line numbers, so the
// baseline survives unrelated edits to the same file.
func (d Diagnostic) Key(root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s: %s: %s", d.Analyzer, file, d.Message)
}

// Config tunes an analysis run.
type Config struct {
	// ClockScope lists the import-path prefixes clockdet applies to.
	// Empty means the default simulation-scoped set under Module.
	ClockScope []string
	// Module is the module path, used to derive the default ClockScope.
	Module string
}

// DefaultClockScope returns the packages whose time sources must be the
// virtual clock: the simulation core and the engines whose behavior
// fault-injection runs replay deterministically.
func DefaultClockScope(module string) []string {
	return []string{
		module + "/internal/core",
		module + "/internal/simnet",
		module + "/internal/events",
		module + "/internal/notify",
	}
}

// pass is one package plus its resolved suppression directives.
type pass struct {
	pkg    *Package
	cfg    *Config
	allows map[string]map[int][]string // file -> line -> allowed analyzers
	diags  *[]Diagnostic
}

func (p *pass) report(pos token.Pos, analyzer, format string, args ...any) {
	position := p.pkg.Fset.Position(pos)
	if p.allowed(position, analyzer) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowed reports whether an inline //cwx:allow directive on the finding
// line (trailing comment) or the line directly above covers analyzer.
func (p *pass) allowed(pos token.Position, analyzer string) bool {
	lines := p.allows[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Run executes every analyzer over pkgs and returns the findings sorted
// by position. Inline //cwx:allow suppressions are already applied;
// baseline filtering is the caller's concern (see ApplyBaseline).
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	if len(cfg.ClockScope) == 0 && cfg.Module != "" {
		cfg.ClockScope = DefaultClockScope(cfg.Module)
	}
	var diags []Diagnostic
	passes := make([]*pass, 0, len(pkgs))
	for _, pkg := range pkgs {
		passes = append(passes, &pass{pkg: pkg, cfg: &cfg, allows: collectAllows(pkg), diags: &diags})
	}
	for _, p := range passes {
		runHotpath(p)
		runClockdet(p)
		runLockscope(p)
	}
	runAtomicmix(passes)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// collectAllows indexes every "//cwx:allow a,b -- reason" comment by
// file and line.
func collectAllows(pkg *Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//cwx:allow")
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(rest), "--")
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return out
}

// hasDirective reports whether a doc comment carries the given marker
// line (e.g. "//cwx:hotpath").
func hasDirective(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// --- baseline ---------------------------------------------------------------------

// BaselineName is the root-relative findings baseline: accepted
// pre-existing findings, one Diagnostic.Key per line. Findings in it are
// filtered from the report; entries no longer produced are flagged as
// stale so the file cannot rot silently.
const BaselineName = ".cwxlint-baseline"

// ReadBaseline loads a baseline file into a key -> count multiset. A
// missing file is an empty baseline.
func ReadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	base := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line]++
	}
	return base, nil
}

// ApplyBaseline splits diags into fresh findings and consumed baseline
// hits, returning the fresh findings plus any stale baseline entries.
func ApplyBaseline(diags []Diagnostic, root string, base map[string]int) (fresh []Diagnostic, stale []string) {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	for _, d := range diags {
		key := d.Key(root)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// WriteBaseline renders diags as a baseline file.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	var b strings.Builder
	b.WriteString("# cwxlint findings baseline: accepted pre-existing findings, one per line.\n")
	b.WriteString("# Regenerate with `go run ./cmd/cwxlint -update-baseline`.\n")
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, d.Key(root))
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// --- shared type helpers ----------------------------------------------------------

// calleeFunc resolves the function or method a call dispatches to, or
// nil for builtins, conversions and calls of function-typed values.
func calleeFunc(p *pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvTypeName returns the bare type name of a method's receiver ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedType dereferences pointers and returns the named type of t, if any.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// exprText renders a short source-ish form of an expression for
// messages, without line numbers so baseline keys stay stable.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	}
	return "expr"
}
