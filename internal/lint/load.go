package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path ("clusterworx/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// loader type-checks the module's packages from source, resolving
// standard-library imports through compiled export data produced by
// `go list -export`. It deliberately avoids golang.org/x/tools: the
// repository has zero external modules and the linter must not add one.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	exports map[string]string
	gc      types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load type-checks every non-test package under root (skipping testdata
// and hidden directories) and returns them sorted by import path.
func Load(root string) ([]*Package, string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, "", err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, "", err
	}
	exports, err := exportData(root, "./...")
	if err != nil {
		return nil, "", err
	}
	l := newLoader(token.NewFileSet(), root, module, exports)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, "", err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, "", err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		p, err := l.loadLocal(path)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, module, nil
}

// LoadDir type-checks a single directory (outside the module, e.g. a
// testdata package) under a synthetic import path. Its imports must be
// standard library.
func LoadDir(dir, path string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		exports, err = exportData(dir, imports...)
		if err != nil {
			return nil, err
		}
	}
	l := newLoader(fset, dir, path, exports)
	return l.check(path, dir, files)
}

func newLoader(fset *token.FileSet, root, module string, exports map[string]string) *loader {
	l := &loader{
		fset:    fset,
		root:    root,
		module:  module,
		exports: exports,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q (go list -export)", path)
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer: module-local packages come from
// source, everything else from compiled export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.gc.Import(path)
}

func (l *loader) loadLocal(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	p, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// parseDir parses the buildable non-test Go files of dir, selected with
// go/build so constrained files (GOOS tags etc.) are handled the same
// way the compiler handles them.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs walks root for directories holding non-test Go files,
// skipping hidden directories and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// exportData asks the go tool for compiled export data of the named
// patterns and their dependencies, returning importPath -> archive file.
// This is how the linter type-checks against the standard library
// without depending on golang.org/x/tools.
func exportData(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -export: %v\n%s", err, errb.String())
	}
	exports := make(map[string]string)
	for _, line := range strings.Split(out.String(), "\n") {
		if line == "" {
			continue
		}
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		exports[path] = file
	}
	return exports, nil
}
