package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
	"clusterworx/internal/events"
	"clusterworx/internal/firmware"
	"clusterworx/internal/icebox"
	"clusterworx/internal/image"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/notify"
	"clusterworx/internal/slurm"
	"clusterworx/internal/transmit"
)

// E5Consolidation reproduces §5.3.2: transmitting only changed values
// "reduces the amount of transferred data substantially", and the request
// cache serves simultaneous requests from one data set.
func E5Consolidation(ticks int) (*Table, error) {
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "n1"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	set, err := monitor.NewSet(monitor.Config{
		FS: n.FS(), Hostname: n.Name(), Now: clk.Now, Probes: n, Echo: n.Reachable,
	})
	if err != nil {
		return nil, err
	}
	defer set.Close()
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		return nil, err
	}

	var fullBytes, deltaBytes int64
	var buf []byte
	for i := 0; i < ticks; i++ {
		clk.Advance(time.Second)
		cons.Tick()
		buf = transmit.MarshalValues(buf[:0], cons.Snapshot())
		fullBytes += int64(len(buf))
		buf = transmit.MarshalValues(buf[:0], cons.Delta())
		deltaBytes += int64(len(buf))
		// Simultaneous GUI requests served from the cache between ticks.
		cons.Snapshot()
		cons.Snapshot()
	}
	st := cons.Stats()
	reduction := 100 * (1 - float64(deltaBytes)/float64(fullBytes))
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("consolidation over %d one-second ticks on an idle node (§5.3.2)", ticks),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"values collected", fmt.Sprintf("%d", st.Collected)},
			{"values changed (transmitted)", fmt.Sprintf("%d", st.Changed)},
			{"values suppressed", fmt.Sprintf("%d", st.Suppressed)},
			{"full-snapshot bytes", fmt.Sprintf("%d", fullBytes)},
			{"change-only bytes", fmt.Sprintf("%d", deltaBytes)},
			{"data reduction", fmt.Sprintf("%.1f%%", reduction)},
			{"cache hits", fmt.Sprintf("%d", st.CacheHits)},
			{"cache builds", fmt.Sprintf("%d", st.CacheBuilds)},
		},
		Notes: []string{"paper: 'transmits only data that has changed ... reduces the amount of transferred data substantially'"},
	}
	return t, nil
}

// E6Compression reproduces §5.3.3: text monitoring data stays
// human-readable and compresses very effectively on the wire.
func E6Compression() (*Table, error) {
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "n1"})
	n.PowerOn()
	clk.Advance(10 * time.Second)

	// Raw /proc text, as gathered.
	var procText []byte
	for _, f := range []string{"/proc/meminfo", "/proc/stat", "/proc/loadavg", "/proc/uptime", "/proc/net/dev", "/proc/cpuinfo"} {
		data, err := n.FS().ReadFile(f)
		if err != nil {
			return nil, err
		}
		procText = append(procText, data...)
	}

	// A realistic monitoring update stream: 60 ticks of change sets.
	set, err := monitor.NewSet(monitor.Config{FS: n.FS(), Hostname: n.Name(), Now: clk.Now, Probes: n, Echo: n.Reachable})
	if err != nil {
		return nil, err
	}
	defer set.Close()
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		return nil, err
	}
	var stream []byte
	for i := 0; i < 60; i++ {
		clk.Advance(time.Second)
		cons.Tick()
		stream = transmit.MarshalValues(stream, cons.Delta())
	}

	row := func(name string, data []byte) []string {
		comp := transmit.CompressedSize(data)
		return []string{name, fmt.Sprintf("%d", len(data)), fmt.Sprintf("%d", comp),
			fmt.Sprintf("%.1fx", float64(len(data))/float64(comp))}
	}
	t := &Table{
		ID:     "E6",
		Title:  "wire compression of text monitoring data (§5.3.3)",
		Header: []string{"payload", "raw bytes", "deflate bytes", "ratio"},
		Rows: [][]string{
			row("/proc file text", procText),
			row("60s change-set stream", stream),
		},
		Notes: []string{"paper: data stays text for platform independence; 'data compression techniques ... are known to be very effective on text input'"},
	}
	return t, nil
}

// E7CloneScaling reproduces §4's headline: multicast clones hundreds of
// nodes over one Fast Ethernet in roughly constant time (~12 min for 400+
// nodes at LLNL including reboot), while unicast grows linearly.
func E7CloneScaling(counts []int, img *image.Image, unicastCap int) (*Table, error) {
	params := cloning.Params{}
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("clone+reboot time vs node count, image %s (%d MB) over Fast Ethernet (§4)", img.ID(), img.Size>>20),
		Header: []string{"nodes", "multicast total", "multicast burst", "unicast total",
			"unicast/multicast"},
	}
	for _, n := range counts {
		mc := cloning.RunMulticast(img, n, 0.01, 42, params)
		ucTotal := "-"
		ratio := "-"
		if n <= unicastCap {
			uc := cloning.RunUnicast(img, n, 0.01, 42, params)
			ucTotal = fmtDur(uc.AllUp)
			ratio = fmt.Sprintf("%.1fx", float64(uc.AllUp)/float64(mc.AllUp))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtDur(mc.AllUp),
			fmtDur(mc.BurstDone),
			ucTotal,
			ratio,
		})
	}
	t.Notes = append(t.Notes,
		"paper: 'It took about 12 min. to clone and reboot over 400 nodes of the Lawrence Livermore cluster'",
		"multicast stays ~flat with node count; unicast grows linearly")
	return t, nil
}

// E8CloneLoss reproduces §4's reliability mechanism: round-robin ACK plus
// unicast repair converges under loss with bounded extra traffic.
func E8CloneLoss(lossRates []float64, nodes int, img *image.Image) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("multicast cloning of %d nodes under packet loss (§4)", nodes),
		Header: []string{"loss", "total time", "repair chunks", "repair bytes", "rounds", "traffic vs lossless"},
	}
	base := cloning.RunMulticast(img, nodes, 0, 7, cloning.Params{})
	for _, loss := range lossRates {
		r := cloning.RunMulticast(img, nodes, loss, 7, cloning.Params{})
		if len(r.NodeUp) != nodes {
			return nil, fmt.Errorf("experiments: only %d/%d nodes converged at loss %.2f", len(r.NodeUp), nodes, loss)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", loss*100),
			fmtDur(r.AllUp),
			fmt.Sprintf("%d", r.RepairChunks),
			fmt.Sprintf("%d", r.RepairBytes),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.2fx", float64(r.TotalBytes())/float64(base.TotalBytes())),
		})
	}
	t.Notes = append(t.Notes, "every node converges to a checksum-verified image at every loss rate")
	return t, nil
}

// E9BootTimes reproduces §2: LinuxBIOS cold-starts in ~3 s, a commercial
// BIOS in 30–60 s, and only LinuxBIOS talks on serial from power-on.
func E9BootTimes() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "cold-start time to operational kernel (§2)",
		Header: []string{"firmware", "memory", "boot source", "boot time", "serial from power-on"},
	}
	for _, fw := range []firmware.Firmware{firmware.NewLinuxBIOS("1.0.1"), firmware.NewLegacyBIOS()} {
		for _, mem := range []uint64{512 << 20, 1 << 30, 2 << 30} {
			for _, src := range []firmware.BootSource{firmware.BootLocalDisk, firmware.BootNetwork} {
				env := firmware.Env{MemBytes: mem, Source: src, KernelBytes: 4 << 20, DiskBandwidth: 20e6, NetBandwidth: 100e6 / 8}
				t.Rows = append(t.Rows, []string{
					fw.Name(),
					fmt.Sprintf("%d MB", mem>>20),
					src.String(),
					fmtDur(firmware.BootTime(fw, env)),
					fmt.Sprintf("%v", fw.SerialFromPowerOn()),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "paper: LinuxBIOS 'starts loading the operating system ... in about 3 seconds, whereas most commercial BIOS alternatives require about 30 to 60 seconds'")
	return t, nil
}

// E10Notification reproduces §5.2's smart notification: one e-mail per
// triggered event across an entire rack of failing nodes, with automatic
// re-fire after a fix.
func E10Notification(nodes int) (*Table, error) {
	clk := clock.New()
	rec := &notify.Recording{}
	ntf := notify.New(clk, rec, notify.Config{Cluster: "prod", Batch: 2 * time.Second})
	eng := events.New(nil, ntf, clk.Now)
	if err := eng.AddRule(events.Rule{
		Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85, Notify: true,
	}); err != nil {
		return nil, err
	}
	name := func(i int) string { return fmt.Sprintf("node%03d", i) }

	// A cooling failure takes out the whole rack within seconds.
	for i := 0; i < nodes; i++ {
		eng.ObserveMap(name(i), map[string]float64{"hw.temp.cpu": 90 + float64(i%5)})
		clk.Advance(100 * time.Millisecond)
	}
	clk.Advance(5 * time.Second)
	mailsAfterStorm := rec.Count()

	// Keep violating: still no new mail.
	for round := 0; round < 10; round++ {
		for i := 0; i < nodes; i++ {
			eng.ObserveMap(name(i), map[string]float64{"hw.temp.cpu": 92})
		}
		clk.Advance(time.Second)
	}
	mailsWhileActive := rec.Count()

	// Admin fixes the rack; later one node fails again: re-fire.
	for i := 0; i < nodes; i++ {
		eng.ObserveMap(name(i), map[string]float64{"hw.temp.cpu": 40})
	}
	clk.Advance(time.Minute)
	eng.ObserveMap(name(3), map[string]float64{"hw.temp.cpu": 97})
	clk.Advance(5 * time.Second)
	mailsAfterRefire := rec.Count()

	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("smart notification, %d-node thermal storm (§5.2)", nodes),
		Header: []string{"phase", "e-mails sent", "expected"},
		Rows: [][]string{
			{fmt.Sprintf("all %d nodes trigger within seconds", nodes), fmt.Sprintf("%d", mailsAfterStorm), "1"},
			{"violation persists for 10 more rounds", fmt.Sprintf("%d", mailsWhileActive), "1"},
			{"fixed, then one node re-fails", fmt.Sprintf("%d", mailsAfterRefire), "2"},
		},
		Notes: []string{"paper: 'Only one e-mail is sent per triggered event, even if multiple nodes are involved ... the event re-fires automatically'"},
	}
	if mailsAfterStorm != 1 || mailsWhileActive != 1 || mailsAfterRefire != 2 {
		return t, fmt.Errorf("experiments: notification counts deviate from the paper's semantics")
	}
	return t, nil
}

// E11ThermalRunaway reproduces §5.2's motivating scenario: "powering down
// a node on CPU fan failure to prevent the CPU from burning." Two
// identical clusters suffer the same fan failure; only one runs the event
// rule.
func E11ThermalRunaway() (*Table, error) {
	run := func(withRule bool) (damaged bool, finalState node.State, tMax float64, acted string, err error) {
		sim, err := core.NewSim(core.SimConfig{Nodes: 4, Cluster: "thermal"})
		if err != nil {
			return false, 0, 0, "", err
		}
		defer sim.Stop()
		if withRule {
			if err := sim.Server.Engine().AddRule(events.Rule{
				Name: "fan-overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
				Action: events.ActPowerOff, Notify: true,
			}); err != nil {
				return false, 0, 0, "", err
			}
		}
		sim.PowerOnAll()
		sim.Advance(30 * time.Second)
		victim := sim.Node("node001")
		victim.SetLoad(1)
		sim.Advance(3 * time.Minute)
		victim.FailFan()
		tMax = victim.Temperature()
		for i := 0; i < 60; i++ {
			sim.Advance(30 * time.Second)
			if temp := victim.Temperature(); temp > tMax {
				tMax = temp
			}
		}
		acted = "-"
		if log := sim.Server.Engine().Log(); len(log) > 0 {
			acted = fmt.Sprintf("%s at %s", log[0].Action, fmtDur(log[0].At))
		}
		return victim.Damaged(), victim.State(), tMax, acted, nil
	}

	t := &Table{
		ID:     "E11",
		Title:  "fan failure under full load, with and without the event engine (§5.2)",
		Header: []string{"configuration", "peak temp", "action taken", "CPU damaged", "final state"},
	}
	for _, withRule := range []bool{false, true} {
		damaged, st, tMax, acted, err := run(withRule)
		if err != nil {
			return nil, err
		}
		name := "no event rule"
		if withRule {
			name = "rule: temp>85C -> power-off"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.1f C", tMax), acted, fmt.Sprintf("%v", damaged), st.String(),
		})
	}
	t.Notes = append(t.Notes, "paper: corrective action is taken 'before problems become critical (e.g. powering down a node on CPU fan failure to prevent the CPU from burning)'")
	return t, nil
}

// E12PowerSequencing reproduces §3.1: "During the power up procedure, ICE
// Box also automatically sequences power, reducing the risk of power
// spikes."
func E12PowerSequencing() (*Table, error) {
	run := func(delay time.Duration) (tripped bool, peakAmps float64, up int, err error) {
		clk := clock.New()
		box := icebox.New(clk, "ice0")
		var nodes []*node.Node
		for i := 0; i < icebox.NodePorts; i++ {
			n := node.New(clk, node.Config{Name: fmt.Sprintf("n%02d", i), Seed: int64(i)})
			nodes = append(nodes, n)
			if err := box.Connect(i, n); err != nil {
				return false, 0, 0, err
			}
		}
		box.SetSequenceDelay(delay)
		box.PowerOnAll()
		for i := 0; i < 200; i++ {
			clk.Advance(50 * time.Millisecond)
			for in := 0; in < 2; in++ {
				box.InletAmps(in) // sample, updating the peak tracker
			}
		}
		clk.Advance(time.Minute)
		for in := 0; in < 2; in++ {
			if a := box.PeakAmps(in); a > peakAmps {
				peakAmps = a
			}
		}
		for _, n := range nodes {
			if n.State() == node.Up {
				up++
			}
		}
		return box.BreakerTripped(0) || box.BreakerTripped(1), peakAmps, up, nil
	}

	t := &Table{
		ID:     "E12",
		Title:  "sequenced vs simultaneous power-up of a full ICE Box (§3.1)",
		Header: []string{"power-up", "breaker tripped", "peak inlet amps", "nodes up"},
	}
	for _, tc := range []struct {
		name  string
		delay time.Duration
	}{
		{"simultaneous (sequencing off)", 0},
		{fmt.Sprintf("sequenced (%s stagger)", icebox.DefaultSequenceDelay), icebox.DefaultSequenceDelay},
	} {
		tripped, peak, up, err := run(tc.delay)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tc.name, fmt.Sprintf("%v", tripped), fmt.Sprintf("%.1f / %.0f limit", peak, icebox.BreakerAmps), fmt.Sprintf("%d/10", up),
		})
	}
	return t, nil
}

// E13Console reproduces §3.3: the 16 KiB per-port buffer retains the tail
// of a dead node's output for post-mortem analysis.
func E13Console() (*Table, error) {
	clk := clock.New()
	box := icebox.New(clk, "ice0")
	n := node.New(clk, node.Config{Name: "n0"})
	if err := box.Connect(0, n); err != nil {
		return nil, err
	}
	box.PowerOn(0) //nolint:errcheck // single node cannot trip
	clk.Advance(10 * time.Second)
	for i := 0; i < 2000; i++ {
		n.Serial().WriteString(fmt.Sprintf("app: step %05d checkpoint ok\n", i))
	}
	n.Crash("MCE on CPU0")
	box.PowerOff(0) //nolint:errcheck // connected port
	dump, err := box.Console(0)
	if err != nil {
		return nil, err
	}
	hasPanic := strings.Contains(string(dump), "MCE on CPU0")
	t := &Table{
		ID:     "E13",
		Title:  "post-mortem serial buffer after node death (§3.3)",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"bytes node ever wrote", fmt.Sprintf("%d", n.Serial().TotalWritten())},
			{"bytes retained by ICE Box", fmt.Sprintf("%d (cap %d)", len(dump), console16k())},
			{"panic visible post-mortem", fmt.Sprintf("%v", hasPanic)},
		},
	}
	if !hasPanic {
		return t, fmt.Errorf("experiments: post-mortem buffer lost the panic")
	}
	return t, nil
}

func console16k() int { return 16 << 10 }

// E14Slurm reproduces §6: allocation, FIFO arbitration, and tolerance of
// controller failure.
func E14Slurm() (*Table, error) {
	clk := clock.New()
	nodeNames := make([]string, 16)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("node%03d", i)
	}
	c := slurm.New(clk, nodeNames)
	completed := 0
	c.OnComplete(func(j slurm.Job) {
		if j.State == slurm.Completed {
			completed++
		}
	})
	// A mixed workload: exclusive MPI jobs and shared serial jobs.
	total := 0
	for i := 0; i < 12; i++ {
		spec := slurm.Spec{Name: fmt.Sprintf("job%d", i), User: "alice",
			Nodes: 1 + i%8, Duration: time.Duration(2+i%5) * time.Minute, Exclusive: i%3 != 0}
		if _, err := c.Submit(spec); err != nil {
			return nil, err
		}
		total++
	}
	clk.Advance(3 * time.Minute)
	queuedMid := len(c.Queue())

	// Kill the active controller mid-run.
	c.KillController(0)
	gap := c.Active() == ""
	clk.Advance(slurm.DefaultHeartbeat)
	promoted := c.Active()

	// Submit more work through the backup.
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(slurm.Spec{Name: fmt.Sprintf("late%d", i), Nodes: 2,
			Duration: time.Minute, Exclusive: true}); err != nil {
			return nil, err
		}
		total++
	}
	clk.RunUntilIdle()

	t := &Table{
		ID:     "E14",
		Title:  "SLURM substrate: queueing, allocation, controller fail-over (§6)",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"jobs submitted", fmt.Sprintf("%d", total)},
			{"pending when controller died", fmt.Sprintf("%d", queuedMid)},
			{"control gap observed", fmt.Sprintf("%v", gap)},
			{"promoted controller", promoted},
			{"fail-overs", fmt.Sprintf("%d", c.Failovers())},
			{"jobs completed", fmt.Sprintf("%d", completed)},
		},
	}
	if completed != total {
		return t, fmt.Errorf("experiments: %d of %d jobs completed", completed, total)
	}
	return t, nil
}

// E15Update covers §4's cloning improvement: "the ability to more easily
// update the kernel on all nodes ... and update files or packages on the
// nodes in parallel" — an incremental multicast update moving only the
// changed segments.
func E15Update(nodes int) (*Table, error) {
	v1 := image.NewBuilder("prod", "2.0", image.BootDisk, 192<<20).
		AddPackage("kernel-2.4.18", 24<<20).
		AddPackage("mpich", 48<<20).
		Build()
	v2 := image.NewBuilder("prod", "2.1", image.BootDisk, 192<<20).
		AddPackage("kernel-2.4.19", 24<<20). // kernel upgraded
		AddPackage("mpich", 48<<20).
		Build()
	full := cloning.RunMulticast(v2, nodes, 0.01, 3, cloning.Params{})
	upd := cloning.RunUpdate(v1, v2, nodes, 0.01, 3, cloning.Params{})
	if len(upd.NodeUp) != nodes || len(full.NodeUp) != nodes {
		return nil, fmt.Errorf("experiments: E15 did not converge")
	}
	t := &Table{
		ID:     "E15",
		Title:  fmt.Sprintf("kernel update on %d nodes: full reclone vs incremental (§4)", nodes),
		Header: []string{"method", "bytes multicast", "total time", "disk written/node"},
		Rows: [][]string{
			{"full reclone", fmt.Sprintf("%d MB", full.MulticastBytes>>20), fmtDur(full.AllUp),
				fmt.Sprintf("%d MB", v2.Size>>20)},
			{"incremental update", fmt.Sprintf("%d MB", upd.MulticastBytes>>20), fmtDur(upd.AllUp),
				fmt.Sprintf("%d MB", (v2.Size-sharedBytes(v1, v2))>>20)},
		},
		Notes: []string{
			"paper: improvements to cloning add 'the ability to more easily update the kernel on all nodes ... and update files or packages on the nodes in parallel'",
			fmt.Sprintf("the two versions share %d of %d MB; only the changed kernel segment moves", sharedBytes(v1, v2)>>20, v2.Size>>20),
		},
	}
	return t, nil
}

// sharedBytes sums the chunk bytes of img already present in old.
func sharedBytes(old, img *image.Image) int64 {
	missing := make(map[int]struct{})
	for _, i := range img.Diff(old) {
		missing[i] = struct{}{}
	}
	var shared int64
	for i := 0; i < img.NumChunks(); i++ {
		if _, m := missing[i]; !m {
			shared += int64(img.ChunkLen(i))
		}
	}
	return shared
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Millisecond).String()
}

// E16Schedulers compares the built-in FIFO arbitration with the
// Maui-style backfill policy plugged through the §6 external-scheduler
// API, on a synthetic mixed workload: makespan, mean wait, and cluster
// utilization.
func E16Schedulers(nodes, jobs int, seed int64) (*Table, error) {
	type outcome struct {
		makespan time.Duration
		meanWait time.Duration
		util     float64
	}
	run := func(sched slurm.Scheduler) (outcome, error) {
		clk := clock.New()
		names := make([]string, nodes)
		for i := range names {
			names[i] = fmt.Sprintf("node%03d", i)
		}
		c := slurm.New(clk, names)
		c.SetScheduler(sched)
		rng := rand.New(rand.NewSource(seed))
		var totalWork time.Duration // node-seconds of demand
		var ids []int
		// Bursty arrivals: all jobs submitted over the first ~10 minutes.
		for i := 0; i < jobs; i++ {
			clk.Advance(time.Duration(rng.Intn(30)) * time.Second)
			spec := slurm.Spec{
				Name:      fmt.Sprintf("job%d", i),
				Nodes:     1 + rng.Intn(nodes/2),
				Duration:  time.Duration(1+rng.Intn(10)) * time.Minute,
				Exclusive: true,
			}
			id, err := c.Submit(spec)
			if err != nil {
				return outcome{}, err
			}
			ids = append(ids, id)
			totalWork += spec.Duration * time.Duration(spec.Nodes)
		}
		clk.RunUntilIdle()
		var makespan time.Duration
		var waitSum time.Duration
		for _, id := range ids {
			j, _ := c.Job(id)
			if j.State != slurm.Completed {
				return outcome{}, fmt.Errorf("job %d ended %v", id, j.State)
			}
			if j.EndedAt > makespan {
				makespan = j.EndedAt
			}
			waitSum += j.StartedAt - j.SubmittedAt
		}
		util := float64(totalWork) / (float64(makespan) * float64(nodes))
		return outcome{
			makespan: makespan,
			meanWait: waitSum / time.Duration(len(ids)),
			util:     util,
		}, nil
	}

	fifo, err := run(slurm.FIFO{})
	if err != nil {
		return nil, err
	}
	bf, err := run(slurm.Backfill{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E16",
		Title:  fmt.Sprintf("FIFO vs backfill (external-scheduler API), %d jobs on %d nodes (§6)", jobs, nodes),
		Header: []string{"policy", "makespan", "mean wait", "cluster utilization"},
		Rows: [][]string{
			{"built-in FIFO", fmtDur(fifo.makespan), fmtDur(fifo.meanWait), fmt.Sprintf("%.0f%%", fifo.util*100)},
			{"Maui-style backfill", fmtDur(bf.makespan), fmtDur(bf.meanWait), fmt.Sprintf("%.0f%%", bf.util*100)},
		},
		Notes: []string{
			"paper: SLURM 'provides an Applications Programming Interface (API) for integration with external schedulers such as The Maui Scheduler'",
			"backfill trades strict fairness for utilization; both run through the same allocation core",
		},
	}
	return t, nil
}
