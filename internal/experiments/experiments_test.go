package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/image"
)

// quick is a short timing window: shape checks need ordering, not
// precision.
const quick = 25 * time.Millisecond

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.Fields(s)[0], "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestE1LadderShape(t *testing.T) {
	tab, err := E1GatherLadder(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var rates [4]float64
	for i := range rates {
		rates[i] = num(t, cell(tab, i, 1))
	}
	// Ordering: naive << buffered < apriori < keepopen.
	if !(rates[0] < rates[1] && rates[1] < rates[2] && rates[2] < rates[3]) {
		t.Fatalf("ladder not monotone: %v", rates)
	}
	if rates[1]/rates[0] < 5 {
		t.Fatalf("buffered step only %.1fx over naive; paper step is ~49x", rates[1]/rates[0])
	}
	if rates[3]/rates[0] < 20 {
		t.Fatalf("full ladder only %.1fx; paper is ~400x", rates[3]/rates[0])
	}
}

func TestE2PerFileShape(t *testing.T) {
	tab, err := E2PerFileCosts(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	cost := map[string]float64{}
	for i, name := range []string{"meminfo", "stat", "loadavg", "uptime", "netdev"} {
		cost[name] = num(t, cell(tab, i, 1))
	}
	// Paper ordering: uptime < loadavg < net/dev, meminfo ≈ stat are the
	// expensive pair.
	if !(cost["uptime"] < cost["meminfo"] && cost["loadavg"] < cost["meminfo"]) {
		t.Fatalf("small files not cheaper: %v", cost)
	}
	if !(cost["uptime"] < cost["stat"] && cost["loadavg"] < cost["netdev"]) {
		t.Fatalf("ordering off: %v", cost)
	}
}

func TestE3ParserShape(t *testing.T) {
	tab, err := E3ParserComparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	memRatio := num(t, cell(tab, 1, 2))
	statRatio := num(t, cell(tab, 3, 2))
	if memRatio < 1 || statRatio < 1 {
		t.Fatalf("generic parser faster than optimized: %v %v", memRatio, statRatio)
	}
	if memRatio > 60 || statRatio > 60 {
		t.Fatalf("parser gap implausibly large: %v %v", memRatio, statRatio)
	}
}

func TestE4BudgetShape(t *testing.T) {
	tab, err := E4OverheadBudget(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	perHour := num(t, cell(tab, 1, 1))
	if perHour > 60 {
		t.Fatalf("monitoring costs %v s/hour; paper's point is a few seconds", perHour)
	}
}

func TestE5ConsolidationShape(t *testing.T) {
	tab, err := E5Consolidation(120)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	reduction := num(t, cell(tab, 5, 1))
	if reduction < 30 {
		t.Fatalf("change-only transmission saved only %.1f%%", reduction)
	}
	if hits := num(t, cell(tab, 6, 1)); hits == 0 {
		t.Fatal("request cache never hit")
	}
}

func TestE6CompressionShape(t *testing.T) {
	tab, err := E6Compression()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	for i := range tab.Rows {
		if ratio := num(t, cell(tab, i, 3)); ratio < 2 {
			t.Fatalf("row %d compresses only %.1fx; text should deflate well", i, ratio)
		}
	}
}

func TestE7CloneScalingShape(t *testing.T) {
	img := image.New("bench-os", "1.0", image.BootDisk, 24<<20)
	tab, err := E7CloneScaling([]int{5, 20, 60}, img, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	mc5 := durCell(t, cell(tab, 0, 1))
	mc60 := durCell(t, cell(tab, 2, 1))
	if float64(mc60) > 2*float64(mc5) {
		t.Fatalf("multicast not flat: 5 nodes %v, 60 nodes %v", mc5, mc60)
	}
	if ratio := num(t, cell(tab, 1, 4)); ratio < 2 {
		t.Fatalf("unicast only %.1fx slower at 20 nodes", ratio)
	}
}

func TestE8CloneLossShape(t *testing.T) {
	img := image.New("bench-os", "1.0", image.BootDisk, 8<<20)
	tab, err := E8CloneLoss([]float64{0.01, 0.05, 0.15}, 8, img)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	r1 := num(t, cell(tab, 0, 2))
	r3 := num(t, cell(tab, 2, 2))
	if r3 <= r1 {
		t.Fatalf("repair chunks did not grow with loss: %v -> %v", r1, r3)
	}
	if mult := num(t, cell(tab, 2, 5)); mult > 4 {
		t.Fatalf("15%% loss inflated traffic %.1fx", mult)
	}
}

func TestE9BootShape(t *testing.T) {
	tab, err := E9BootTimes()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// Row 2: LinuxBIOS 1GB disk; row 8: Legacy 1GB disk.
	var lb, legacy time.Duration
	for _, row := range tab.Rows {
		if row[1] != "1024 MB" || row[2] != "disk" {
			continue
		}
		d := durCell(t, row[3])
		if row[0] == "LinuxBIOS" {
			lb = d
		} else {
			legacy = d
		}
	}
	if lb < 1500*time.Millisecond || lb > 4*time.Second {
		t.Fatalf("LinuxBIOS 1GB boot = %v, want ~3s", lb)
	}
	if legacy < 25*time.Second || legacy > 60*time.Second {
		t.Fatalf("legacy 1GB boot = %v, want 30-60s", legacy)
	}
	if float64(legacy)/float64(lb) < 8 {
		t.Fatalf("boot ratio %.1f too small", float64(legacy)/float64(lb))
	}
}

func TestE10NotificationShape(t *testing.T) {
	tab, err := E10Notification(40)
	if err != nil {
		t.Fatalf("%v\n%s", err, tab)
	}
	t.Log("\n" + tab.String())
}

func TestE11ThermalShape(t *testing.T) {
	tab, err := E11ThermalRunaway()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// Without the rule the CPU burns; with it the node survives.
	if cell(tab, 0, 3) != "true" {
		t.Fatalf("control arm did not burn: %v", tab.Rows[0])
	}
	if cell(tab, 1, 3) != "false" {
		t.Fatalf("event engine failed to save the node: %v", tab.Rows[1])
	}
	if cell(tab, 1, 4) != "off" {
		t.Fatalf("protected node final state = %v", tab.Rows[1])
	}
}

func TestE12SequencingShape(t *testing.T) {
	tab, err := E12PowerSequencing()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	if cell(tab, 0, 1) != "true" {
		t.Fatal("simultaneous power-up did not trip the breaker")
	}
	if cell(tab, 1, 1) != "false" || cell(tab, 1, 3) != "10/10" {
		t.Fatalf("sequenced power-up failed: %v", tab.Rows[1])
	}
}

func TestE13ConsoleShape(t *testing.T) {
	tab, err := E13Console()
	if err != nil {
		t.Fatalf("%v\n%s", err, tab)
	}
	t.Log("\n" + tab.String())
}

func TestE14SlurmShape(t *testing.T) {
	tab, err := E14Slurm()
	if err != nil {
		t.Fatalf("%v\n%s", err, tab)
	}
	t.Log("\n" + tab.String())
}

func durCell(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(strings.Fields(s)[0])
	if err != nil {
		t.Fatalf("cell %q not a duration: %v", s, err)
	}
	return d
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "1"}},
		Notes:  []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"== X: demo ==", "long-header", "wide-cell-content", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE15UpdateShape(t *testing.T) {
	tab, err := E15Update(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	fullBytes := num(t, cell(tab, 0, 1))
	updBytes := num(t, cell(tab, 1, 1))
	if updBytes*4 > fullBytes {
		t.Fatalf("incremental update moved %v MB of %v MB; delta not exploited", updBytes, fullBytes)
	}
	fullTime := durCell(t, cell(tab, 0, 2))
	updTime := durCell(t, cell(tab, 1, 2))
	if updTime >= fullTime {
		t.Fatalf("update (%v) not faster than reclone (%v)", updTime, fullTime)
	}
}

func TestE16SchedulerShape(t *testing.T) {
	tab, err := E16Schedulers(8, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	fifoSpan := durCell(t, cell(tab, 0, 1))
	bfSpan := durCell(t, cell(tab, 1, 1))
	if bfSpan > fifoSpan {
		t.Fatalf("backfill makespan %v worse than FIFO %v", bfSpan, fifoSpan)
	}
	fifoUtil := num(t, cell(tab, 0, 3))
	bfUtil := num(t, cell(tab, 1, 3))
	if bfUtil < fifoUtil {
		t.Fatalf("backfill utilization %.0f%% below FIFO %.0f%%", bfUtil, fifoUtil)
	}
}
