// Package experiments regenerates every quantitative claim in the paper's
// evaluation (the E1–E14 index in DESIGN.md). Each function produces a
// printable table; the repository-root benchmarks and the cwxsim binary
// both drive these, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"clusterworx/internal/gather"
	"clusterworx/internal/procfs"
)

// Table is one experiment's result: a header and rows of columns.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// benchFS builds the evolving /proc the gathering experiments sample.
func benchFS(seed int64) *procfs.FS {
	fs := procfs.NewFS()
	syn := procfs.NewSynthetic(seed)
	procfs.RegisterStd(fs, syn.Stat)
	return fs
}

// timeSamples runs fn for at least minDur and returns samples/second and
// the per-call cost.
func timeSamples(minDur time.Duration, fn func() error) (perSec float64, perCall time.Duration, err error) {
	// Warm up.
	for i := 0; i < 16; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	n := 0
	start := time.Now()
	for {
		const batch = 64
		for i := 0; i < batch; i++ {
			if err := fn(); err != nil {
				return 0, 0, err
			}
		}
		n += batch
		if time.Since(start) >= minDur {
			break
		}
	}
	elapsed := time.Since(start)
	perSec = float64(n) / elapsed.Seconds()
	perCall = elapsed / time.Duration(n)
	return perSec, perCall, nil
}

// E1GatherLadder reproduces §5.3.1's optimization ladder on /proc/meminfo:
// paper numbers 85 → 4173 (+4800 %) → 14031 (+236 %) → 33855 (+141 %)
// samples per second.
func E1GatherLadder(minDur time.Duration) (*Table, error) {
	fs := benchFS(1)
	var m gather.MemStats

	keepOpen, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		return nil, err
	}
	defer keepOpen.Close()

	strategies := []struct {
		name  string
		paper float64 // paper samples/s
		fn    func() error
	}{
		{"naive (chunked read + scanf)", 85, func() error { return gather.NewNaiveMeminfo(fs).Gather(&m) }},
		{"buffered (one read, generic parse)", 4173, func() error { return gather.NewBufferedMeminfo(fs).Gather(&m) }},
		{"a-priori format parse", 14031, func() error { return gather.NewAprioriMeminfo(fs).Gather(&m) }},
		{"keep open + rewind", 33855, func() error { return keepOpen.Gather(&m) }},
	}
	// Reuse allocated gatherers for per-sample strategies too (the paper's
	// implementations were long-lived); rebuild closures with persistent
	// gatherers.
	naive := gather.NewNaiveMeminfo(fs)
	strategies[0].fn = func() error { return naive.Gather(&m) }
	buffered := gather.NewBufferedMeminfo(fs)
	strategies[1].fn = func() error { return buffered.Gather(&m) }
	apriori := gather.NewAprioriMeminfo(fs)
	strategies[2].fn = func() error { return apriori.Gather(&m) }

	t := &Table{
		ID:     "E1",
		Title:  "gathering ladder, /proc/meminfo (§5.3.1)",
		Header: []string{"strategy", "samples/s", "us/call", "step speedup", "paper samples/s", "paper step"},
	}
	paperSteps := []string{"-", "+4800%", "+236%", "+141%"}
	var prev float64
	for i, s := range strategies {
		perSec, perCall, err := timeSamples(minDur, s.fn)
		if err != nil {
			return nil, err
		}
		step := "-"
		if i > 0 && prev > 0 {
			step = fmt.Sprintf("+%.0f%%", (perSec/prev-1)*100)
		}
		t.Rows = append(t.Rows, []string{
			s.name,
			fmt.Sprintf("%.0f", perSec),
			fmt.Sprintf("%.2f", float64(perCall.Nanoseconds())/1000),
			step,
			fmt.Sprintf("%.0f", s.paper),
			paperSteps[i],
		})
		prev = perSec
	}
	t.Notes = append(t.Notes,
		"absolute rates differ from the paper's 1 GHz P3; the ladder ordering and multiplicative wins are the claim")
	return t, nil
}

// E2PerFileCosts reproduces §5.3.1's per-file costs with the final
// strategy: paper meminfo 29.5 µs, stat 35 µs, loadavg 7.5 µs, uptime
// 6.2 µs, net/dev 21.6 µs per device.
func E2PerFileCosts(minDur time.Duration) (*Table, error) {
	fs := benchFS(2)

	mg, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		return nil, err
	}
	defer mg.Close()
	sg, err := gather.NewStatGatherer(fs)
	if err != nil {
		return nil, err
	}
	defer sg.Close()
	lg, err := gather.NewLoadavgGatherer(fs)
	if err != nil {
		return nil, err
	}
	defer lg.Close()
	ug, err := gather.NewUptimeGatherer(fs)
	if err != nil {
		return nil, err
	}
	defer ug.Close()
	ng, err := gather.NewNetDevGatherer(fs)
	if err != nil {
		return nil, err
	}
	defer ng.Close()

	var m gather.MemStats
	var c gather.CPUStats
	var l gather.LoadStats
	var u gather.UptimeStats
	var nd gather.NetDevStats

	files := []struct {
		name  string
		paper float64 // µs/call
		fn    func() error
	}{
		{"/proc/meminfo", 29.5, func() error { return mg.Gather(&m) }},
		{"/proc/stat", 35, func() error { return sg.Gather(&c) }},
		{"/proc/loadavg", 7.5, func() error { return lg.Gather(&l) }},
		{"/proc/uptime", 6.2, func() error { return ug.Gather(&u) }},
		{"/proc/net/dev (2 devices)", 2 * 21.6, func() error { return ng.Gather(&nd) }},
	}
	t := &Table{
		ID:     "E2",
		Title:  "per-file gathering cost, final strategy (§5.3.1)",
		Header: []string{"file", "us/call", "paper us/call", "rel to meminfo", "paper rel"},
	}
	var us []float64
	for _, f := range files {
		_, perCall, err := timeSamples(minDur, f.fn)
		if err != nil {
			return nil, err
		}
		us = append(us, float64(perCall.Nanoseconds())/1000)
	}
	for i, f := range files {
		t.Rows = append(t.Rows, []string{
			f.name,
			fmt.Sprintf("%.2f", us[i]),
			fmt.Sprintf("%.1f", f.paper),
			fmt.Sprintf("%.2f", us[i]/us[0]),
			fmt.Sprintf("%.2f", f.paper/files[0].paper),
		})
	}
	t.Notes = append(t.Notes, "shape: uptime < loadavg < net/dev <= meminfo ~ stat, all tens of microseconds or below")
	return t, nil
}

// E3ParserComparison reproduces §5.3.1's C-vs-Java observation as
// optimized-vs-generic parsing of identical bytes: the hand parser wins,
// but only modestly once I/O is already optimal.
func E3ParserComparison(minDur time.Duration) (*Table, error) {
	fs := procfs.NewFS()
	procfs.RegisterStd(fs, procfs.Frozen())
	memText, err := fs.ReadFile("/proc/meminfo")
	if err != nil {
		return nil, err
	}
	statText, err := fs.ReadFile("/proc/stat")
	if err != nil {
		return nil, err
	}
	var m gather.MemStats
	var c gather.CPUStats
	cases := []struct {
		name string
		fn   func() error
	}{
		{"meminfo a-priori", func() error { return gather.ParseMeminfoApriori(memText, &m) }},
		{"meminfo generic", func() error { return gather.ParseMeminfoGeneric(memText, &m) }},
		{"stat a-priori", func() error { return gather.ParseStatApriori(statText, &c) }},
		{"stat generic", func() error { return gather.ParseStatGeneric(statText, &c) }},
	}
	t := &Table{
		ID:     "E3",
		Title:  "parser-only comparison on identical bytes (§5.3.1 C-vs-Java analogue)",
		Header: []string{"parser", "ns/parse", "ratio vs optimized"},
	}
	var ns []float64
	for _, cse := range cases {
		_, perCall, err := timeSamples(minDur, cse.fn)
		if err != nil {
			return nil, err
		}
		ns = append(ns, float64(perCall.Nanoseconds()))
	}
	for i, cse := range cases {
		base := ns[i/2*2] // the a-priori row of each pair
		t.Rows = append(t.Rows, []string{
			cse.name,
			fmt.Sprintf("%.0f", ns[i]),
			fmt.Sprintf("%.2fx", ns[i]/base),
		})
	}
	t.Notes = append(t.Notes,
		"the paper found C only slightly ahead of Java and kept Java; here the generic parser is the 'portable' analogue and loses by a small factor, dwarfed by the E1 I/O effects")
	return t, nil
}

// E4OverheadBudget reproduces §5.3.1's closing arithmetic: 29.5 µs/call at
// 50 samples/s is about 5 s of CPU per hour.
func E4OverheadBudget(minDur time.Duration) (*Table, error) {
	fs := benchFS(4)
	mg, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		return nil, err
	}
	defer mg.Close()
	var m gather.MemStats
	_, perCall, err := timeSamples(minDur, func() error { return mg.Gather(&m) })
	if err != nil {
		return nil, err
	}
	const rate = 50.0
	perHour := time.Duration(float64(perCall) * rate * 3600)
	paperPerHour := time.Duration(29.5 * rate * 3600 * float64(time.Microsecond))
	t := &Table{
		ID:     "E4",
		Title:  "monitoring CPU budget at 50 samples/s (§5.3.1)",
		Header: []string{"quantity", "measured", "paper"},
		Rows: [][]string{
			{"per-call cost", fmt.Sprintf("%.2f us", float64(perCall.Nanoseconds())/1000), "29.5 us"},
			{"CPU time per hour", fmt.Sprintf("%.2f s", perHour.Seconds()), fmt.Sprintf("%.1f s (\"approximately 5 seconds\")", paperPerHour.Seconds())},
			{"CPU fraction", fmt.Sprintf("%.4f%%", perHour.Seconds()/3600*100), fmt.Sprintf("%.3f%%", paperPerHour.Seconds()/3600*100)},
		},
	}
	return t, nil
}
