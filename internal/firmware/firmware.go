// Package firmware models the two boot paths the paper compares (§2):
// LinuxBIOS — "a Linux kernel that can boot Linux from a cold start ... in
// about 3 seconds" with serial console output from power-on — and a
// conventional vendor BIOS that "requires about 30 to 60 seconds", probes
// legacy devices (video, floppy, CD-ROM, IDE) and stays silent on serial
// until the bootloader runs.
//
// A Firmware is a staged finite state machine; the boot executor walks the
// stages on the virtual clock, emitting each stage's serial output and
// reporting hardware faults the way the real firmware would (LinuxBIOS
// "reports all detected errors and hardware failures using the serial
// console"; a legacy BIOS hangs mute).
package firmware

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"clusterworx/internal/clock"
)

// BootSource says where the kernel comes from.
type BootSource uint8

// Boot sources; LinuxBIOS can use either and is reconfigured remotely.
const (
	BootLocalDisk BootSource = iota
	BootNetwork
)

// String names the boot source.
func (s BootSource) String() string {
	if s == BootNetwork {
		return "net"
	}
	return "disk"
}

// Env describes the node hardware the firmware initializes.
type Env struct {
	MemBytes      uint64
	Source        BootSource
	KernelBytes   int64   // kernel+initrd to load
	NetBandwidth  float64 // bytes/s available for network boot
	DiskBandwidth float64 // bytes/s for local kernel load
	MemoryFault   bool    // inject a bad DIMM
}

// Stage is one step of a boot sequence.
type Stage struct {
	Name     string
	Duration time.Duration
	Serial   string // emitted on the serial console at stage start, if any
}

// Firmware produces a staged boot plan for an environment.
type Firmware interface {
	// Name identifies the firmware ("LinuxBIOS", "LegacyBIOS").
	Name() string
	// Stages returns the boot plan for env.
	Stages(env Env) []Stage
	// SerialFromPowerOn reports whether the serial console carries output
	// from the first instruction (true only for LinuxBIOS).
	SerialFromPowerOn() bool
}

// BootTime returns the total cold-start duration of fw in env, faults
// aside.
func BootTime(fw Firmware, env Env) time.Duration {
	var total time.Duration
	for _, st := range fw.Stages(env) {
		total += st.Duration
	}
	return total
}

// --- LinuxBIOS ---------------------------------------------------------------

// LinuxBIOS is the open-source firmware: hardware init, serial console
// activation, memory check, then kernel load — "only it does it in about 3
// seconds".
type LinuxBIOS struct {
	mu       sync.Mutex
	version  string
	settings map[string]string
}

// NewLinuxBIOS returns a LinuxBIOS image at the given version.
func NewLinuxBIOS(version string) *LinuxBIOS {
	return &LinuxBIOS{version: version, settings: map[string]string{
		"console":    "ttyS0,115200",
		"boot_order": "net,disk",
	}}
}

// Name implements Firmware.
func (l *LinuxBIOS) Name() string { return "LinuxBIOS" }

// SerialFromPowerOn implements Firmware: true, the defining feature.
func (l *LinuxBIOS) SerialFromPowerOn() bool { return true }

// Version returns the flashed firmware version.
func (l *LinuxBIOS) Version() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Flash installs a new firmware version remotely ("flash new LinuxBIOS
// releases on demand"); it takes effect on the next boot.
func (l *LinuxBIOS) Flash(version string) {
	l.mu.Lock()
	l.version = version
	l.mu.Unlock()
}

// Set changes a BIOS setting remotely "from within the Linux operating
// system"; active as soon as the node is rebooted.
func (l *LinuxBIOS) Set(key, value string) {
	l.mu.Lock()
	l.settings[key] = value
	l.mu.Unlock()
}

// Setting reads a BIOS setting.
func (l *LinuxBIOS) Setting(key string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.settings[key]
}

// Settings returns a sorted key=value dump for the management tools.
func (l *LinuxBIOS) Settings() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.settings))
	for k, v := range l.settings {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}

// Stages implements Firmware.
func (l *LinuxBIOS) Stages(env Env) []Stage {
	gib := float64(env.MemBytes) / (1 << 30)
	stages := []Stage{
		{
			Name:     "hwinit",
			Duration: 200 * time.Millisecond,
			Serial:   fmt.Sprintf("\nLinuxBIOS-%s booting...\nserial console ttyS0 enabled\n", l.Version()),
		},
		{
			Name:     "memcheck",
			Duration: time.Duration(0.8 * gib * float64(time.Second)),
			Serial:   fmt.Sprintf("checking memory: %d MB\n", env.MemBytes>>20),
		},
	}
	if env.MemoryFault {
		stages = append(stages, Stage{
			Name:     "memfault",
			Duration: 50 * time.Millisecond,
			Serial:   "ERROR: memory test failed at 0x1f400000 - halting\n",
		})
		return stages
	}
	load := kernelLoadStage(env)
	load.Serial = fmt.Sprintf("loading kernel from %s (%d KB)\n", env.Source, env.KernelBytes>>10)
	stages = append(stages, load, Stage{
		Name:     "kernel",
		Duration: 1800 * time.Millisecond,
		Serial:   "Linux version 2.4.18 (LinuxBIOS payload)\nVFS: Mounted root.\n",
	})
	return stages
}

// --- Legacy BIOS --------------------------------------------------------------

// LegacyBIOS is the vendor firmware: slow POST, probes of "inherently
// unreliable devices such as video cards, floppy disks, CD-ROM and hard
// drives", no serial output until the bootloader, no remote
// configuration.
type LegacyBIOS struct{}

// NewLegacyBIOS returns the conventional BIOS.
func NewLegacyBIOS() *LegacyBIOS { return &LegacyBIOS{} }

// Name implements Firmware.
func (LegacyBIOS) Name() string { return "LegacyBIOS" }

// SerialFromPowerOn implements Firmware: the screen gets output, the
// serial port does not.
func (LegacyBIOS) SerialFromPowerOn() bool { return false }

// Stages implements Firmware.
func (LegacyBIOS) Stages(env Env) []Stage {
	gib := float64(env.MemBytes) / (1 << 30)
	stages := []Stage{
		{Name: "post", Duration: time.Duration(8 * gib * float64(time.Second))}, // silent memory count
		{Name: "video", Duration: 2 * time.Second},
		{Name: "floppy", Duration: 3 * time.Second},
		{Name: "ide-probe", Duration: 5 * time.Second},
		{Name: "cdrom-probe", Duration: 4 * time.Second},
	}
	if env.MemoryFault {
		// Beep codes on a speaker nobody can hear; serial stays mute.
		stages = append(stages, Stage{Name: "beep-halt", Duration: time.Second})
		return stages
	}
	if env.Source == BootNetwork {
		stages = append(stages, Stage{Name: "pxe-rom", Duration: 5 * time.Second})
	}
	stages = append(stages, Stage{
		Name:     "bootloader",
		Duration: 3 * time.Second,
		Serial:   "LILO 22.2 boot: linux\n", // serial finally alive
	})
	load := kernelLoadStage(env)
	load.Serial = "Loading linux"
	stages = append(stages, load, Stage{
		Name:     "kernel",
		Duration: 5 * time.Second,
		Serial:   "Linux version 2.4.18\nVFS: Mounted root.\n",
	})
	return stages
}

// kernelLoadStage computes the kernel transfer stage for the environment.
func kernelLoadStage(env Env) Stage {
	kernel := env.KernelBytes
	if kernel <= 0 {
		kernel = 4 << 20
	}
	var rate float64
	switch env.Source {
	case BootNetwork:
		rate = env.NetBandwidth
		if rate <= 0 {
			rate = 100e6 / 8
		}
	default:
		rate = env.DiskBandwidth
		if rate <= 0 {
			rate = 20e6
		}
	}
	return Stage{
		Name:     "kernel-load",
		Duration: time.Duration(float64(kernel) / rate * float64(time.Second)),
	}
}

// --- boot executor -------------------------------------------------------------

// Outcome is a finished boot's disposition.
type Outcome uint8

// Boot outcomes. A cancelled boot (power pulled) reports nothing: the
// canceller initiated the transition and owns the consequences.
const (
	BootOK Outcome = iota
	BootFault
)

// Run is an in-flight boot sequence.
type Run struct {
	clk       *clock.Clock
	fw        Firmware
	stages    []Stage
	serial    io.Writer
	onDone    func(Outcome)
	stage     int
	current   string
	timer     *clock.Timer
	cancelled bool
	done      bool
	startedAt time.Duration
	outcome   Outcome
}

// Boot starts fw in env, writing stage output to serial (which may be nil)
// and invoking onDone with the outcome. It returns a handle that can
// cancel the boot (power pulled mid-POST).
func Boot(clk *clock.Clock, fw Firmware, env Env, serial io.Writer, onDone func(Outcome)) *Run {
	r := &Run{
		clk:       clk,
		fw:        fw,
		stages:    fw.Stages(env),
		serial:    serial,
		onDone:    onDone,
		startedAt: clk.Now(),
	}
	if env.MemoryFault {
		r.outcome = BootFault
	}
	r.enterStage()
	return r
}

// Cancel aborts the boot silently; onDone never fires.
func (r *Run) Cancel() {
	if r.done || r.cancelled {
		return
	}
	r.cancelled = true
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
	}
}

// Stage returns the stage currently executing, or "" when finished.
func (r *Run) Stage() string {
	if r.done {
		return ""
	}
	return r.current
}

// Elapsed returns time since power-on.
func (r *Run) Elapsed() time.Duration { return r.clk.Now() - r.startedAt }

func (r *Run) enterStage() {
	if r.cancelled || r.done {
		return
	}
	if r.stage >= len(r.stages) {
		r.finish(r.outcome)
		return
	}
	st := r.stages[r.stage]
	r.current = st.Name
	if st.Serial != "" && r.serial != nil {
		r.serial.Write([]byte(st.Serial)) //nolint:errcheck // console writes cannot fail
	}
	r.stage++
	r.timer = r.clk.AfterFunc(st.Duration, r.enterStage)
}

func (r *Run) finish(out Outcome) {
	if r.done {
		return
	}
	r.done = true
	if r.onDone != nil {
		r.onDone(out)
	}
}
