package firmware

import (
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/console"
)

func env1G() Env {
	return Env{MemBytes: 1 << 30, Source: BootLocalDisk, KernelBytes: 4 << 20, DiskBandwidth: 20e6}
}

func TestLinuxBIOSBootsInAboutThreeSeconds(t *testing.T) {
	bt := BootTime(NewLinuxBIOS("1.0.1"), env1G())
	if bt < 1500*time.Millisecond || bt > 4*time.Second {
		t.Fatalf("LinuxBIOS boot = %v, want ~3 s", bt)
	}
}

func TestLegacyBIOSBootsInThirtyToSixtySeconds(t *testing.T) {
	bt := BootTime(NewLegacyBIOS(), env1G())
	if bt < 25*time.Second || bt > 60*time.Second {
		t.Fatalf("LegacyBIOS boot = %v, want 30-60 s", bt)
	}
}

func TestBootRatioMatchesPaper(t *testing.T) {
	lb := BootTime(NewLinuxBIOS("1"), env1G())
	legacy := BootTime(NewLegacyBIOS(), env1G())
	ratio := float64(legacy) / float64(lb)
	if ratio < 8 {
		t.Fatalf("legacy/linuxbios boot ratio = %.1f, want ~10-20x", ratio)
	}
}

func TestMoreMemorySlowsBoth(t *testing.T) {
	small, big := env1G(), env1G()
	big.MemBytes = 4 << 30
	if BootTime(NewLinuxBIOS("1"), big) <= BootTime(NewLinuxBIOS("1"), small) {
		t.Fatal("LinuxBIOS memcheck not scaling with memory")
	}
	if BootTime(NewLegacyBIOS(), big) <= BootTime(NewLegacyBIOS(), small) {
		t.Fatal("legacy POST not scaling with memory")
	}
}

func TestNetbootPaths(t *testing.T) {
	netEnv := env1G()
	netEnv.Source = BootNetwork
	// LinuxBIOS netboots directly; legacy needs a PXE ROM stage.
	legacyStages := NewLegacyBIOS().Stages(netEnv)
	found := false
	for _, s := range legacyStages {
		if s.Name == "pxe-rom" {
			found = true
		}
	}
	if !found {
		t.Fatal("legacy netboot lacks pxe-rom stage")
	}
	if BootSource(99).String() == "" || BootNetwork.String() != "net" || BootLocalDisk.String() != "disk" {
		t.Fatal("BootSource.String wrong")
	}
}

func TestSerialFromPowerOn(t *testing.T) {
	clk := clock.New()
	for _, tc := range []struct {
		fw        Firmware
		fromStart bool
	}{
		{NewLinuxBIOS("1.0.1"), true},
		{NewLegacyBIOS(), false},
	} {
		con := console.New(0)
		Boot(clk, tc.fw, env1G(), con, nil)
		clk.Advance(200 * time.Millisecond) // early in POST
		early := len(con.PostMortem()) > 0
		if early != tc.fromStart {
			t.Errorf("%s: serial output at 200ms = %v, want %v", tc.fw.Name(), early, tc.fromStart)
		}
		if tc.fw.SerialFromPowerOn() != tc.fromStart {
			t.Errorf("%s: SerialFromPowerOn() = %v", tc.fw.Name(), tc.fw.SerialFromPowerOn())
		}
		clk.RunUntilIdle()
	}
}

func TestBootRunCompletes(t *testing.T) {
	clk := clock.New()
	con := console.New(0)
	var outcome Outcome = 99
	r := Boot(clk, NewLinuxBIOS("1.0.1"), env1G(), con, func(o Outcome) { outcome = o })
	if r.Stage() != "hwinit" {
		t.Fatalf("initial stage %q", r.Stage())
	}
	clk.RunUntilIdle()
	if outcome != BootOK {
		t.Fatalf("outcome = %v", outcome)
	}
	if r.Stage() != "" {
		t.Fatalf("stage after done = %q", r.Stage())
	}
	text := string(con.PostMortem())
	for _, want := range []string{"LinuxBIOS-1.0.1", "checking memory: 1024 MB", "Mounted root"} {
		if !strings.Contains(text, want) {
			t.Errorf("serial missing %q:\n%s", want, text)
		}
	}
}

func TestMemoryFaultReporting(t *testing.T) {
	clk := clock.New()
	bad := env1G()
	bad.MemoryFault = true

	// LinuxBIOS reports the failure on the serial console.
	con := console.New(0)
	var out Outcome
	Boot(clk, NewLinuxBIOS("1"), bad, con, func(o Outcome) { out = o })
	clk.RunUntilIdle()
	if out != BootFault {
		t.Fatalf("LinuxBIOS outcome = %v, want BootFault", out)
	}
	if !strings.Contains(string(con.PostMortem()), "memory test failed") {
		t.Fatal("LinuxBIOS did not report memory fault on serial")
	}

	// Legacy BIOS fails mute.
	con2 := console.New(0)
	Boot(clk, NewLegacyBIOS(), bad, con2, func(o Outcome) { out = o })
	clk.RunUntilIdle()
	if out != BootFault {
		t.Fatalf("legacy outcome = %v", out)
	}
	if len(con2.PostMortem()) != 0 {
		t.Fatalf("legacy BIOS wrote to serial on fault: %q", con2.PostMortem())
	}
}

func TestCancelSuppressesCallback(t *testing.T) {
	clk := clock.New()
	called := false
	r := Boot(clk, NewLinuxBIOS("1"), env1G(), nil, func(Outcome) { called = true })
	clk.Advance(50 * time.Millisecond)
	r.Cancel()
	r.Cancel() // idempotent
	clk.RunUntilIdle()
	if called {
		t.Fatal("cancelled boot fired onDone")
	}
	if r.Elapsed() < 50*time.Millisecond {
		t.Fatalf("elapsed = %v", r.Elapsed())
	}
}

func TestRemoteSettingsAndFlash(t *testing.T) {
	lb := NewLinuxBIOS("1.0.1")
	if lb.Setting("console") != "ttyS0,115200" {
		t.Fatalf("default console setting = %q", lb.Setting("console"))
	}
	lb.Set("boot_order", "disk,net")
	if lb.Setting("boot_order") != "disk,net" {
		t.Fatal("Set did not take")
	}
	lb.Flash("1.1.0")
	if lb.Version() != "1.1.0" {
		t.Fatal("Flash did not take")
	}
	dump := lb.Settings()
	if len(dump) != 2 || !strings.HasPrefix(dump[0], "boot_order=") {
		t.Fatalf("Settings() = %v", dump)
	}
	// New version shows up in next boot's serial banner.
	clk := clock.New()
	con := console.New(0)
	Boot(clk, lb, env1G(), con, nil)
	clk.RunUntilIdle()
	if !strings.Contains(string(con.PostMortem()), "LinuxBIOS-1.1.0") {
		t.Fatal("flashed version not active on next boot")
	}
}

func TestNilSerialIsSafe(t *testing.T) {
	clk := clock.New()
	done := false
	Boot(clk, NewLegacyBIOS(), env1G(), nil, func(Outcome) { done = true })
	clk.RunUntilIdle()
	if !done {
		t.Fatal("boot with nil serial did not complete")
	}
}
