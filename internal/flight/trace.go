package flight

import "sync/atomic"

// Causal trace ids. A trace id is minted by the agent when a tick is
// sampled, travels inside the wire frame (transmit's "t=" header
// option), and stamps every journal record the frame touches on both
// sides of the wire. Ids must be (a) cheap — stamping happens every
// tick, sampled or not — and (b) deterministic under the sim so traced
// runs replay exactly; both rule out math/rand and wall clocks, so
// sampling is a counter decision and the id a hash of (node salt, tick).

// rate is the trace sampling interval: one tick in rate is traced.
// 0 (or negative) disables tracing entirely; the flight journal still
// records untraced incidents (gaps, retries, overflows).
var rate atomic.Int64

// DefaultRate is the sampling interval agents start with: roughly one
// frame in 64 carries a trace, cheap enough to leave on in production.
const DefaultRate = 64

func init() { rate.Store(DefaultRate) }

// Rate returns the current sampling interval.
func Rate() int { return int(rate.Load()) }

// SetRate sets the sampling interval (n <= 0 disables tracing) and
// returns the previous one.
func SetRate(n int) int { return int(rate.Swap(int64(n))) }

// Salt derives a per-emitter sampling phase and id salt from its name
// (FNV-1a), so a fleet of agents with the same rate does not trace the
// same tick in lockstep.
func Salt(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

// NextTrace decides whether tick n of the emitter with the given salt
// is sampled, returning a fresh nonzero trace id if so and 0 if not.
// The unsampled path is two atomic loads and a modulo: 0 allocs.
//
//cwx:hotpath
func NextTrace(salt uint32, n uint64) uint64 {
	if !defaultJournal.on.Load() {
		return 0
	}
	r := rate.Load()
	if r <= 0 {
		return 0
	}
	if (n+uint64(salt))%uint64(r) != 0 {
		return 0
	}
	return NewTraceID(salt, n)
}

// NewTraceID hashes (salt, n) into a nonzero 64-bit trace id with a
// splitmix64 finalizer — well distributed, deterministic, no clock.
//
//cwx:hotpath
func NewTraceID(salt uint32, n uint64) uint64 {
	x := uint64(salt)<<32 ^ n ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

const hexDigits = "0123456789abcdef"

// FormatTrace renders a trace id as the fixed 16-hex-digit form used
// everywhere a trace id is shown ("cwxctl flight <id>" accepts it).
func FormatTrace(id uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTrace parses the 16-hex-digit form. ok is false for anything
// else — callers fall back to treating the argument as a node name.
func ParseTrace(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	return id, id != 0
}
