package flight

import (
	"sync"
	"testing"
)

func TestAppendAndSince(t *testing.T) {
	j := NewJournal()
	n := j.Sym("node001")
	d := j.Sym("cpu-high")
	for i := 1; i <= 5; i++ {
		seq := j.Append(0, Entry{Kind: KindGap, Node: n, Detail: d, TimeNs: int64(i), A: int64(i), B: int64(i + 1)})
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	if got := j.Cursor(); got != 5 {
		t.Fatalf("cursor = %d, want 5", got)
	}
	rs := j.Since(0, 0)
	if len(rs) != 5 {
		t.Fatalf("Since(0) returned %d records, want 5", len(rs))
	}
	for i, r := range rs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
		if r.Node != "node001" || r.Detail != "cpu-high" || r.Kind != KindGap {
			t.Fatalf("record fields wrong: %+v", r)
		}
	}
	if rs := j.Since(3, 0); len(rs) != 2 || rs[0].Seq != 4 {
		t.Fatalf("Since(3) = %+v", rs)
	}
	if rs := j.Since(0, 2); len(rs) != 2 || rs[0].Seq != 4 || rs[1].Seq != 5 {
		t.Fatalf("Since(0, max=2) should keep the newest: %+v", rs)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	j := NewJournal()
	n := j.Sym("n")
	total := shardSlots + 100 // stripe-pinned: wraps one shard's ring
	for i := 1; i <= total; i++ {
		j.Append(0, Entry{Kind: KindBank, Node: n, A: int64(i)})
	}
	rs := j.Since(0, 0)
	if len(rs) != shardSlots {
		t.Fatalf("retained %d records, want %d", len(rs), shardSlots)
	}
	if rs[0].Seq != uint64(total-shardSlots+1) || rs[len(rs)-1].Seq != uint64(total) {
		t.Fatalf("retained window [%d,%d], want [%d,%d]",
			rs[0].Seq, rs[len(rs)-1].Seq, total-shardSlots+1, total)
	}
}

func TestTraceAndNodeQueries(t *testing.T) {
	j := NewJournal()
	a, b := j.Sym("alpha"), j.Sym("beta")
	j.Append(0, Entry{Kind: KindStage, Stage: 0, Node: a, Trace: 7, TimeNs: 1})
	j.Append(1, Entry{Kind: KindStage, Stage: 3, Node: a, Trace: 7, TimeNs: 2})
	j.Append(2, Entry{Kind: KindStage, Stage: 3, Node: b, Trace: 9, TimeNs: 3})
	j.Append(3, Entry{Kind: KindGap, Node: a})

	tr := j.TraceRecords(7)
	if len(tr) != 2 || tr[0].Stage != 0 || tr[1].Stage != 3 {
		t.Fatalf("TraceRecords(7) = %+v", tr)
	}
	if got := j.LastTrace("alpha"); got != 7 {
		t.Fatalf("LastTrace(alpha) = %d, want 7", got)
	}
	if got := j.LastTrace("beta"); got != 9 {
		t.Fatalf("LastTrace(beta) = %d, want 9", got)
	}
	if got := j.LastTrace("ghost"); got != 0 {
		t.Fatalf("LastTrace(ghost) = %d, want 0", got)
	}
	if nr := j.NodeRecords("alpha", 0); len(nr) != 3 {
		t.Fatalf("NodeRecords(alpha) = %+v", nr)
	}
}

func TestKillSwitch(t *testing.T) {
	j := NewJournal()
	if !j.Enabled() {
		t.Fatal("journal should start enabled")
	}
	prev := j.SetEnabled(false)
	if !prev {
		t.Fatal("SetEnabled should return the previous value")
	}
	if seq := j.Append(0, Entry{Kind: KindGap}); seq != 0 {
		t.Fatalf("disabled append returned seq %d", seq)
	}
	j.SetEnabled(true)
	if seq := j.Append(0, Entry{Kind: KindGap}); seq != 1 {
		t.Fatalf("re-enabled append returned seq %d", seq)
	}
}

func TestSymInterning(t *testing.T) {
	j := NewJournal()
	if j.Sym("") != 0 {
		t.Fatal("empty string must intern to Sym 0")
	}
	s1 := j.Sym("node001")
	if s1 == 0 || j.Sym("node001") != s1 {
		t.Fatalf("interning not stable: %d vs %d", s1, j.Sym("node001"))
	}
	if j.name(s1) != "node001" {
		t.Fatalf("name(%d) = %q", s1, j.name(s1))
	}
	if j.name(Sym(99999)) != "?" {
		t.Fatal("unknown Sym should render as ?")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	j := NewJournal()
	syms := [4]Sym{j.Sym("n0"), j.Sym("n1"), j.Sym("n2"), j.Sym("n3")}
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Append(w, Entry{Kind: KindStage, Stage: uint8(i % 6), Node: syms[w%4], Trace: uint64(w + 1), TimeNs: int64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, r := range j.Since(0, 0) {
				if r.Kind != KindStage || r.Seq == 0 {
					t.Errorf("torn record: %+v", r)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := j.Cursor(); got != writers*per {
		t.Fatalf("cursor = %d, want %d", got, writers*per)
	}
	rs := j.Since(0, 0)
	for i := 1; i < len(rs); i++ {
		if rs[i].Seq <= rs[i-1].Seq {
			t.Fatalf("records not strictly ordered at %d: %d then %d", i, rs[i-1].Seq, rs[i].Seq)
		}
	}
}

func TestSamplingDeterminism(t *testing.T) {
	prev := SetRate(64)
	defer SetRate(prev)
	salt := Salt("node001")
	var ids []uint64
	hits := 0
	for n := uint64(0); n < 64*10; n++ {
		if id := NextTrace(salt, n); id != 0 {
			hits++
			ids = append(ids, id)
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 640 ticks at rate 64, want 10", hits)
	}
	// Deterministic: the same (salt, tick) always mints the same id.
	for n := uint64(0); n < 64*10; n++ {
		id := NextTrace(salt, n)
		if id != 0 && id != NewTraceID(salt, n) {
			t.Fatalf("trace id not deterministic at tick %d", n)
		}
	}
	// Distinct ticks mint distinct ids.
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace id %016x", id)
		}
		seen[id] = true
	}
	// Different salts sample different phases (not all aligned at 0).
	if Salt("node001")%64 == Salt("node002")%64 && Salt("node001")%64 == Salt("node003")%64 {
		t.Fatal("salts collapse to one sampling phase")
	}
	SetRate(0)
	if NextTrace(salt, 0) != 0 {
		t.Fatal("rate 0 must disable tracing")
	}
}

func TestTraceFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatTrace(id)
		if len(s) != 16 {
			t.Fatalf("FormatTrace(%x) = %q", id, s)
		}
		got, ok := ParseTrace(s)
		if !ok || got != id {
			t.Fatalf("roundtrip %x -> %q -> %x ok=%v", id, s, got, ok)
		}
	}
	for _, s := range []string{"", "node001", "0000000000000000", "00000000000000zz", "123"} {
		if _, ok := ParseTrace(s); ok {
			t.Fatalf("ParseTrace(%q) should fail", s)
		}
	}
}

func TestReset(t *testing.T) {
	j := NewJournal()
	j.Append(0, Entry{Kind: KindGap})
	j.Append(5, Entry{Kind: KindBank})
	j.Reset()
	if j.Cursor() != 0 || len(j.Since(0, 0)) != 0 {
		t.Fatal("Reset did not clear the journal")
	}
	if seq := j.Append(0, Entry{Kind: KindGap}); seq != 1 {
		t.Fatalf("post-reset append seq = %d", seq)
	}
}
