// Package flight is the always-on flight recorder: a fixed-size,
// lock-free, sharded ring journal of structured pipeline records plus
// the causal trace-id machinery that links records from different
// processes (agent and server) into one span tree per sampled frame.
//
// Design constraints, in order:
//
//   - Appends sit on the ingest and transmit hot paths, so Append is
//     //cwx:hotpath: no locks, no allocations, no formatting. Strings
//     never enter the ring — node names, rule names, and gate names are
//     interned once (cold path) into small Sym ids.
//   - Reads are rare (ctl verbs, dashboards) and may be slow, but they
//     must be safe under the race detector. A classic seqlock reads
//     plain fields and is a data race by Go's memory model, so every
//     slot field is an individual atomic: the writer claims the slot by
//     CAS-ing the version even→odd, stores the fields, then bumps it
//     back to even; the reader rejects odd versions and re-validates
//     the version after loading.
//   - The recorder is always on by default but has a kill switch
//     (SetEnabled) and the tracer has a sampling rate (SetRate,
//     default 1 in 64 frames) so the observability layer can be
//     ablated without rebuilding.
//
// Records carry a global sequence cursor (Journal.Cursor) so consumers
// — the ctl "journal since <seq>" verb and watch streams — can resume
// exactly where they left off; overwritten slots simply vanish from
// the query results (the ring keeps the newest journalShards*shardSlots
// records).
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a journal record. Stage records (KindStage) are the
// hops of a traced frame; everything else is a detour or control-plane
// incident worth reconstructing after the fact.
type Kind uint8

const (
	KindNone          Kind = iota
	KindStage              // one pipeline hop of a traced frame (Stage names it; A=duration ns, B=payload size)
	KindGap                // server saw a sequence gap (A=last applied wire seq, B=arriving seq)
	KindRegression         // server saw a sequence regression, i.e. agent restart (A=last seq, B=arriving seq)
	KindResyncSent         // server pushed a "!resync" request down the back-channel
	KindResyncRecv         // agent received a resync request
	KindResyncSnap         // agent shipped a healing snapshot (A=values; B=1 if requested, 0 if anti-entropy)
	KindSnapApplied        // server applied a full snapshot, divergence healed (A=values)
	KindRetransmit         // agent send carried banked values from failed ticks (A=values)
	KindSendFail           // agent send failed; values banked (A=values banked, B=consecutive fails)
	KindBank               // agent banked a delta during retry backoff (A=values, B=consecutive fails)
	KindEventFired         // event rule fired (Detail=rule, A=observed value truncated to int)
	KindNotifyRetry        // notifier rescheduled a failed delivery (Detail=rule, A=attempts so far)
	KindGateRebuild        // serving-plane gate rebuilt its cached response (Detail=gate name)
	KindWatchOverflow      // watch subscriber queue overflowed; subscriber flagged for resync
	KindWatchResync        // watch subscriber was sent a full RESYNC snapshot (Detail=verb)
	KindWireUpgrade        // wire session negotiated a new protocol version (A=version; agent on switch, server on first answer)
	KindWireReset          // wire dictionary reset (server: "!wreset" sent; agent: received and rebased)
	KindUplinkForward      // uplink forwarded a traced node sub-frame upstream (Node=node, A=values)
	KindUplinkResync       // uplink resync (sender: "!uresync" received or snap-all armed; receiver: batch chain break, "!uresync" sent)
	numKinds
)

var kindNames = [numKinds]string{
	KindNone:          "none",
	KindStage:         "stage",
	KindGap:           "gap",
	KindRegression:    "regression",
	KindResyncSent:    "resync-sent",
	KindResyncRecv:    "resync-recv",
	KindResyncSnap:    "resync-snap",
	KindSnapApplied:   "snap-applied",
	KindRetransmit:    "retransmit",
	KindSendFail:      "send-fail",
	KindBank:          "bank",
	KindEventFired:    "event-fired",
	KindNotifyRetry:   "notify-retry",
	KindGateRebuild:   "gate-rebuild",
	KindWatchOverflow: "watch-overflow",
	KindWatchResync:   "watch-resync",
	KindWireUpgrade:   "wire-upgrade",
	KindWireReset:     "wire-reset",
	KindUplinkForward: "uplink-forward",
	KindUplinkResync:  "uplink-resync",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Sym is an interned string id. Sym 0 is always the empty string.
// Interning happens on cold paths (node registration, rule setup);
// hot-path appenders carry pre-resolved Syms.
type Sym uint32

// Entry is what appenders hand to Journal.Append. TimeNs is always
// caller-supplied — the flight package never reads a clock, so records
// are deterministic under the sim's virtual time (and cwxlint's
// clockdet scope never applies here). Components with no clock at all
// (the serving plane) pass 0.
type Entry struct {
	Kind   Kind
	Stage  uint8 // telemetry.Stage index; meaningful for KindStage only
	Node   Sym
	Detail Sym
	Trace  uint64 // causal trace id; 0 = not tied to a sampled frame
	TimeNs int64
	A, B   int64 // kind-specific payload, see Kind comments
}

// Record is the query-side view of a journal entry: Syms resolved back
// to strings and the global sequence number attached.
type Record struct {
	Seq    uint64
	TimeNs int64
	Kind   Kind
	Stage  uint8
	Trace  uint64
	Node   string
	Detail string
	A, B   int64
}

const (
	journalShards = 8
	shardSlots    = 1024 // per shard; 8192 records total, ~64 B/slot
	maxSyms       = 1 << 16
)

// slot is one ring cell. Every field is an individual atomic so
// concurrent read/write is defined behavior under the race detector;
// ver is the seqlock-style version (odd while a writer owns the slot).
// Eight 8-byte words: exactly one cache line.
type slot struct {
	ver   atomic.Uint64
	seq   atomic.Uint64
	time  atomic.Int64
	trace atomic.Uint64
	a     atomic.Int64
	b     atomic.Int64
	ks    atomic.Uint64 // kind<<8 | stage
	ids   atomic.Uint64 // node<<32 | detail
}

type jshard struct {
	pos   atomic.Uint64
	slots [shardSlots]slot
	_     [64]byte // keep neighboring shards off each other's lines
}

// Journal is the flight recorder. The zero value is not usable; call
// NewJournal (or use the process-wide Default).
type Journal struct {
	on  atomic.Bool
	seq atomic.Uint64 // global cursor; Append n returns n-th record's seq

	mu     sync.Mutex //cwx:lockrank flightsym 72
	byName map[string]Sym
	names  atomic.Pointer[[]string] // copy-on-write Sym→string table

	shards [journalShards]jshard
}

// NewJournal returns an enabled, empty journal.
func NewJournal() *Journal {
	j := &Journal{byName: make(map[string]Sym)}
	names := []string{""}
	j.names.Store(&names)
	j.on.Store(true)
	return j
}

var defaultJournal = NewJournal()

// Default is the process-wide journal every subsystem appends to.
func Default() *Journal { return defaultJournal }

// Enabled reports whether appends are being recorded.
func (j *Journal) Enabled() bool { return j.on.Load() }

// SetEnabled flips the recorder kill switch and returns the previous
// setting. Disabling makes Append a single atomic load.
func (j *Journal) SetEnabled(on bool) bool { return j.on.Swap(on) }

// Cursor returns the sequence number of the most recent record; a
// consumer that remembers it can ask Since(cursor, ...) for only what
// happened afterwards.
func (j *Journal) Cursor() uint64 { return j.seq.Load() }

// Sym interns name and returns its id. Cold path (takes the journal
// lock). The table is capped; past maxSyms new names collapse to Sym 0
// rather than growing without bound.
func (j *Journal) Sym(name string) Sym {
	if name == "" {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if s, ok := j.byName[name]; ok {
		return s
	}
	cur := *j.names.Load()
	if len(cur) >= maxSyms {
		return 0
	}
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = name
	s := Sym(len(cur))
	j.byName[name] = s
	j.names.Store(&next)
	return s
}

// name resolves a Sym without locking (the table is copy-on-write).
func (j *Journal) name(s Sym) string {
	t := *j.names.Load()
	if int(s) < len(t) {
		return t[s]
	}
	return "?"
}

// Append records e on the given stripe (callers pass their shard index
// so concurrent appenders spread across rings) and returns the record's
// global sequence number, or 0 when the recorder is disabled.
//
//cwx:hotpath
func (j *Journal) Append(stripe int, e Entry) uint64 {
	if !j.on.Load() {
		return 0
	}
	seq := j.seq.Add(1)
	sh := &j.shards[uint(stripe)%journalShards]
	i := sh.pos.Add(1) - 1
	s := &sh.slots[i%shardSlots]
	// Claim the slot: even→odd via CAS. A failed CAS means another
	// writer lapped the ring onto this very slot; spin, it holds the
	// claim only for a handful of atomic stores.
	for {
		v := s.ver.Load()
		if v&1 == 0 && s.ver.CompareAndSwap(v, v+1) {
			break
		}
	}
	s.seq.Store(seq)
	s.time.Store(e.TimeNs)
	s.trace.Store(e.Trace)
	s.a.Store(e.A)
	s.b.Store(e.B)
	s.ks.Store(uint64(e.Kind)<<8 | uint64(e.Stage))
	s.ids.Store(uint64(e.Node)<<32 | uint64(e.Detail))
	s.ver.Add(1)
	return seq
}

// read snapshots one slot. ok is false for never-written slots and for
// slots that were being rewritten faster than we could read them.
func (j *Journal) read(s *slot) (Record, bool) {
	for tries := 0; tries < 8; tries++ {
		v := s.ver.Load()
		if v&1 == 1 {
			continue
		}
		r := Record{
			Seq:    s.seq.Load(),
			TimeNs: s.time.Load(),
			Trace:  s.trace.Load(),
			A:      s.a.Load(),
			B:      s.b.Load(),
		}
		ks := s.ks.Load()
		ids := s.ids.Load()
		if s.ver.Load() != v {
			continue
		}
		if r.Seq == 0 {
			return Record{}, false
		}
		r.Kind = Kind(ks >> 8)
		r.Stage = uint8(ks)
		r.Node = j.name(Sym(ids >> 32))
		r.Detail = j.name(Sym(uint32(ids)))
		return r, true
	}
	return Record{}, false
}

// collect scans the whole ring and returns records passing keep, in
// ascending sequence order.
func (j *Journal) collect(keep func(*Record) bool) []Record {
	var out []Record
	for si := range j.shards {
		sh := &j.shards[si]
		for i := range sh.slots {
			if r, ok := j.read(&sh.slots[i]); ok && keep(&r) {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Since returns every retained record with Seq > since, oldest first.
// If max > 0 only the newest max of them are returned (the cursor
// still advances monotonically, so a follower never re-reads).
func (j *Journal) Since(since uint64, max int) []Record {
	out := j.collect(func(r *Record) bool { return r.Seq > since })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// TraceRecords returns every retained record stamped with trace id,
// oldest first — the span tree of one sampled frame.
func (j *Journal) TraceRecords(id uint64) []Record {
	if id == 0 {
		return nil
	}
	return j.collect(func(r *Record) bool { return r.Trace == id })
}

// NodeRecords returns the newest max retained records for a node.
func (j *Journal) NodeRecords(node string, max int) []Record {
	out := j.collect(func(r *Record) bool { return r.Node == node })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// LastTrace returns the most recent trace id that produced a record
// for node, or 0 if none is retained.
func (j *Journal) LastTrace(node string) uint64 {
	var best Record
	for si := range j.shards {
		sh := &j.shards[si]
		for i := range sh.slots {
			if r, ok := j.read(&sh.slots[i]); ok && r.Node == node && r.Trace != 0 && r.Seq > best.Seq {
				best = r
			}
		}
	}
	return best.Trace
}

// Capacity is the number of records the ring retains.
func Capacity() int { return journalShards * shardSlots }

// Reset clears every slot and rewinds the cursor. Test helper only: it
// must not race live writers (it claims each slot, but the cursor
// rewind is not coordinated with concurrent Appends).
func (j *Journal) Reset() {
	for si := range j.shards {
		sh := &j.shards[si]
		for i := range sh.slots {
			s := &sh.slots[i]
			for {
				v := s.ver.Load()
				if v&1 == 0 && s.ver.CompareAndSwap(v, v+1) {
					break
				}
			}
			s.seq.Store(0)
			s.ver.Add(1)
		}
		sh.pos.Store(0)
	}
	j.seq.Store(0)
}
