// Package console implements serial-console capture as the ICE Box
// provides it (paper §3.3): every byte a node writes to its serial port is
// buffered in a bounded ring — "up to 16k" — so that an administrator can
// perform post-mortem analysis on a node that has since crashed or lost
// power, and optionally streamed to attached live listeners.
package console

import (
	"io"
	"sync"
)

// DefaultRingSize is the ICE Box per-port buffer size.
const DefaultRingSize = 16 << 10

// Ring is a fixed-capacity byte ring that keeps the most recent writes.
// The zero value is unusable; call NewRing.
type Ring struct {
	buf   []byte
	start int
	size  int
	total int64
}

// NewRing returns a ring holding the last capacity bytes written.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]byte, capacity)}
}

// Write appends p, evicting the oldest bytes when full. It never fails.
func (r *Ring) Write(p []byte) (int, error) {
	n := len(p)
	r.total += int64(n)
	if n >= len(r.buf) {
		// Only the tail survives.
		copy(r.buf, p[n-len(r.buf):])
		r.start = 0
		r.size = len(r.buf)
		return n, nil
	}
	end := (r.start + r.size) % len(r.buf)
	first := copy(r.buf[end:], p)
	copy(r.buf, p[first:])
	r.size += n
	if r.size > len(r.buf) {
		r.start = (r.start + r.size - len(r.buf)) % len(r.buf)
		r.size = len(r.buf)
	}
	return n, nil
}

// Snapshot returns the buffered bytes, oldest first.
func (r *Ring) Snapshot() []byte {
	out := make([]byte, r.size)
	first := copy(out, r.buf[r.start:min(r.start+r.size, len(r.buf))])
	copy(out[first:], r.buf[:r.size-first])
	return out
}

// TotalWritten returns the number of bytes ever written, including evicted
// ones.
func (r *Ring) TotalWritten() int64 { return r.total }

// Len returns the number of buffered bytes.
func (r *Ring) Len() int { return r.size }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Reset discards buffered content but keeps the total counter.
func (r *Ring) Reset() {
	r.start, r.size = 0, 0
}

// Console is one serial port's capture point: a post-mortem ring plus any
// number of live listeners (telnet sessions, log files). Safe for
// concurrent use.
type Console struct {
	mu        sync.Mutex
	ring      *Ring
	listeners []io.Writer
}

// New returns a console with the given ring capacity (0 = 16 KiB).
func New(ringSize int) *Console {
	return &Console{ring: NewRing(ringSize)}
}

// Write records p in the ring and forwards it to every live listener.
// Listener errors are ignored: a stuck telnet client must not block a
// node's serial output.
func (c *Console) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring.Write(p)
	for _, l := range c.listeners {
		l.Write(p) //nolint:errcheck // listeners are best-effort
	}
	return len(p), nil
}

// WriteString is a convenience for firmware and kernel messages.
func (c *Console) WriteString(s string) {
	c.Write([]byte(s)) //nolint:errcheck // ring writes cannot fail
}

// Attach adds a live listener receiving all subsequent output.
func (c *Console) Attach(w io.Writer) {
	c.mu.Lock()
	c.listeners = append(c.listeners, w)
	c.mu.Unlock()
}

// Detach removes a previously attached listener.
func (c *Console) Detach(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, l := range c.listeners {
		if l == w {
			c.listeners = append(c.listeners[:i], c.listeners[i+1:]...)
			return
		}
	}
}

// PostMortem returns the ring contents — the last ≤16 KiB the node wrote,
// even if it is now dead.
func (c *Console) PostMortem() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Snapshot()
}

// TotalWritten returns all bytes ever seen on this console.
func (c *Console) TotalWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.TotalWritten()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
