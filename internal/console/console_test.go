package console

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRingBasicWrite(t *testing.T) {
	r := NewRing(10)
	r.Write([]byte("hello"))
	if got := string(r.Snapshot()); got != "hello" {
		t.Fatalf("snapshot %q", got)
	}
	if r.Len() != 5 || r.Cap() != 10 || r.TotalWritten() != 5 {
		t.Fatalf("len/cap/total = %d/%d/%d", r.Len(), r.Cap(), r.TotalWritten())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(8)
	r.Write([]byte("abcdefgh"))
	r.Write([]byte("XYZ"))
	if got := string(r.Snapshot()); got != "defghXYZ" {
		t.Fatalf("snapshot %q, want tail", got)
	}
	if r.TotalWritten() != 11 {
		t.Fatalf("total = %d", r.TotalWritten())
	}
}

func TestRingOversizeWrite(t *testing.T) {
	r := NewRing(4)
	r.Write([]byte("0123456789"))
	if got := string(r.Snapshot()); got != "6789" {
		t.Fatalf("snapshot %q", got)
	}
}

func TestRingWraparoundMany(t *testing.T) {
	r := NewRing(16)
	var full bytes.Buffer
	for i := 0; i < 100; i++ {
		chunk := []byte(strings.Repeat(string(rune('a'+i%26)), i%7+1))
		r.Write(chunk)
		full.Write(chunk)
	}
	all := full.Bytes()
	want := string(all[len(all)-16:])
	if got := string(r.Snapshot()); got != want {
		t.Fatalf("snapshot %q, want %q", got, want)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(8)
	r.Write([]byte("data"))
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear")
	}
	if r.TotalWritten() != 4 {
		t.Fatal("reset cleared total counter")
	}
}

func TestDefaultRingSize(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != DefaultRingSize {
		t.Fatalf("default cap = %d", r.Cap())
	}
	if DefaultRingSize != 16<<10 {
		t.Fatal("ICE Box buffer must be 16k per the paper")
	}
}

func TestConsolePostMortem(t *testing.T) {
	c := New(16)
	c.WriteString("boot ok\n")
	c.WriteString("kernel panic!\n")
	pm := string(c.PostMortem())
	if !strings.Contains(pm, "panic") {
		t.Fatalf("post-mortem %q", pm)
	}
	if c.TotalWritten() != int64(len("boot ok\nkernel panic!\n")) {
		t.Fatalf("total = %d", c.TotalWritten())
	}
}

func TestConsoleListeners(t *testing.T) {
	c := New(64)
	var a, b bytes.Buffer
	c.Attach(&a)
	c.WriteString("one")
	c.Attach(&b)
	c.WriteString("two")
	c.Detach(&a)
	c.WriteString("three")
	if a.String() != "onetwo" {
		t.Fatalf("a = %q", a.String())
	}
	if b.String() != "twothree" {
		t.Fatalf("b = %q", b.String())
	}
	// Detaching an unknown writer is a no-op.
	c.Detach(&bytes.Buffer{})
}

// Property: the ring always holds exactly the suffix of everything
// written, capped at capacity.
func TestPropertyRingIsSuffix(t *testing.T) {
	f := func(chunks [][]byte, capSel uint8) bool {
		capacity := int(capSel)%64 + 1
		r := NewRing(capacity)
		var all []byte
		for _, c := range chunks {
			r.Write(c)
			all = append(all, c...)
		}
		want := all
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		return bytes.Equal(r.Snapshot(), want) && r.TotalWritten() == int64(len(all))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
