//go:build race

package clusterworx

// raceEnabled gates tests whose assertions are meaningless under the
// race detector (allocation counts include race-runtime bookkeeping).
const raceEnabled = true
