// Ablation benchmarks: sweeps over the design parameters DESIGN.md calls
// out, quantifying why each default is what it is.
//
//   - cloning chunk size: header overhead vs repair granularity
//   - cloning NAK batch size: repair round-trips vs acknowledgement size
//   - wire compression on/off: bytes on the management network
//   - consolidation under load: change suppression on idle vs busy nodes
//   - ICE Box sequencing stagger: time-to-all-up vs breaker margin
//   - server ingest locking: sharded + per-node locks vs one global mutex
//   - telemetry recording on/off: observability overhead on the hot path
package clusterworx

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
	"clusterworx/internal/events"
	"clusterworx/internal/history"
	"clusterworx/internal/icebox"
	"clusterworx/internal/image"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/telemetry"
	"clusterworx/internal/transmit"
)

// --- cloning chunk size ----------------------------------------------------------

func benchAblationChunkSize(b *testing.B, chunkKiB int) {
	img := image.NewWithChunkSize("abl", "1", image.BootDisk, 32<<20, chunkKiB<<10)
	var vt time.Duration
	var bytes int64
	for i := 0; i < b.N; i++ {
		r := cloning.RunMulticast(img, 12, 0.05, int64(i), cloning.Params{})
		if len(r.NodeUp) != 12 {
			b.Fatal("did not converge")
		}
		vt += r.AllUp
		bytes += r.TotalBytes()
	}
	b.ReportMetric(vt.Seconds()/float64(b.N), "vtime_s")
	b.ReportMetric(float64(bytes)/float64(b.N)/(32<<20), "bytes_vs_image")
}

func BenchmarkAblationCloneChunk16K(b *testing.B)  { benchAblationChunkSize(b, 16) }
func BenchmarkAblationCloneChunk64K(b *testing.B)  { benchAblationChunkSize(b, 64) }
func BenchmarkAblationCloneChunk256K(b *testing.B) { benchAblationChunkSize(b, 256) }

// --- cloning NAK batch size -------------------------------------------------------

func benchAblationNak(b *testing.B, maxNak int) {
	img := image.New("abl", "1", image.BootDisk, 16<<20)
	var polls int
	var vt time.Duration
	for i := 0; i < b.N; i++ {
		r := cloning.RunMulticast(img, 10, 0.15, int64(i), cloning.Params{MaxNakChunks: maxNak})
		if len(r.NodeUp) != 10 {
			b.Fatal("did not converge")
		}
		polls += r.Polls
		vt += r.AllUp
	}
	b.ReportMetric(float64(polls)/float64(b.N), "polls")
	b.ReportMetric(vt.Seconds()/float64(b.N), "vtime_s")
}

func BenchmarkAblationCloneNak16(b *testing.B)   { benchAblationNak(b, 16) }
func BenchmarkAblationCloneNak256(b *testing.B)  { benchAblationNak(b, 256) }
func BenchmarkAblationCloneNak2048(b *testing.B) { benchAblationNak(b, 2048) }

// --- wire compression on/off -------------------------------------------------------

func benchAblationWire(b *testing.B, compress bool) {
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "abl"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	n.SetLoad(1)
	set, err := monitor.NewSet(monitor.Config{
		FS: n.FS(), Hostname: n.Name(), Now: clk.Now, Probes: n, Echo: n.Reachable,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		b.Fatal(err)
	}
	w := transmit.NewWriter(discard{}, compress)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		cons.Tick()
		buf = transmit.MarshalValues(buf[:0], cons.Delta())
		if err := w.WriteFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if w.RawBytes() > 0 {
		b.ReportMetric(float64(w.WireBytes())/float64(b.N), "wire_bytes/update")
	}
}

func BenchmarkAblationWireRaw(b *testing.B)        { benchAblationWire(b, false) }
func BenchmarkAblationWireCompressed(b *testing.B) { benchAblationWire(b, true) }

// --- consolidation suppression: idle vs busy node ------------------------------------

func benchAblationSuppression(b *testing.B, load float64) {
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "abl"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	n.SetLoad(load)
	clk.Advance(5 * time.Minute)
	set, err := monitor.NewSet(monitor.Config{
		FS: n.FS(), Hostname: n.Name(), Now: clk.Now, Probes: n, Echo: n.Reachable,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		cons.Tick()
		cons.Delta()
	}
	b.StopTimer()
	st := cons.Stats()
	if st.Collected > 0 {
		b.ReportMetric(100*float64(st.Suppressed)/float64(st.Collected), "suppressed_%")
	}
}

func BenchmarkAblationSuppressionIdle(b *testing.B) { benchAblationSuppression(b, 0) }
func BenchmarkAblationSuppressionBusy(b *testing.B) { benchAblationSuppression(b, 2) }

// --- ICE Box sequencing stagger ----------------------------------------------------------

func benchAblationStagger(b *testing.B, stagger time.Duration) {
	trips, allUp := 0, 0
	var vt time.Duration
	for i := 0; i < b.N; i++ {
		clk := clock.New()
		box := icebox.New(clk, "abl")
		nodes := make([]*node.Node, icebox.NodePorts)
		for p := range nodes {
			nodes[p] = node.New(clk, node.Config{Name: fmt.Sprintf("n%02d", p), Seed: int64(p)})
			if err := box.Connect(p, nodes[p]); err != nil {
				b.Fatal(err)
			}
		}
		box.SetSequenceDelay(stagger)
		box.PowerOnAll()
		clk.Advance(2 * time.Minute)
		if box.BreakerTripped(0) || box.BreakerTripped(1) {
			trips++
		}
		up := 0
		var last time.Duration
		for _, n := range nodes {
			if n.State() == node.Up {
				up++
			}
		}
		last = clk.Now()
		if up == icebox.NodePorts {
			allUp++
			vt += last
		}
	}
	b.ReportMetric(float64(trips)/float64(b.N), "breaker_trips")
	b.ReportMetric(float64(allUp)/float64(b.N), "full_rack_up_rate")
}

func BenchmarkAblationStagger0ms(b *testing.B)    { benchAblationStagger(b, 0) }
func BenchmarkAblationStagger100ms(b *testing.B)  { benchAblationStagger(b, 100*time.Millisecond) }
func BenchmarkAblationStagger300ms(b *testing.B)  { benchAblationStagger(b, 300*time.Millisecond) }
func BenchmarkAblationStagger1000ms(b *testing.B) { benchAblationStagger(b, time.Second) }

// --- server ingest locking: sharded vs global mutex ----------------------------------
//
// globalLockIngest replicates the pre-sharding server ingest design: one
// mutex over the whole node table, and a fresh event-sample map rebuilt
// from the node's full value set on every update while that mutex is held.
// Benchmarked against the sharded core.Server on the identical workload
// (same node population, same change sets — see runIngestBench), it
// quantifies what the lock striping, per-node locks, and incremental
// sample maintenance buy.

type globalLockRec struct {
	lastSeen time.Duration
	seen     bool
	values   map[string]consolidate.Value
}

type globalLockIngest struct {
	mu     sync.Mutex
	now    func() time.Duration
	nodes  map[string]*globalLockRec
	hist   *history.Store
	engine *events.Engine
}

func newGlobalLockIngest() *globalLockIngest {
	start := time.Now()
	g := &globalLockIngest{
		now:   func() time.Duration { return time.Since(start) },
		nodes: make(map[string]*globalLockRec),
		hist:  history.NewStore(0),
	}
	g.engine = events.New(nil, nil, g.now)
	return g
}

func (g *globalLockIngest) HandleValues(nodeName string, values []consolidate.Value) {
	now := g.now()
	g.mu.Lock()
	rec, ok := g.nodes[nodeName]
	if !ok {
		rec = &globalLockRec{values: make(map[string]consolidate.Value)}
		g.nodes[nodeName] = rec
	}
	rec.lastSeen = now
	rec.seen = true
	for _, v := range values {
		rec.values[v.Name] = v
		if !v.IsText {
			g.hist.Append(nodeName, v.Name, now, v.Num)
		}
	}
	sample := make(map[string]float64, len(rec.values))
	for name, v := range rec.values {
		if !v.IsText {
			sample[name] = v.Num
		}
	}
	g.mu.Unlock()
	g.engine.ObserveMap(nodeName, sample)
}

func benchAblationIngestGlobalLock(b *testing.B, parallelism int) {
	g := newGlobalLockIngest()
	runIngestBench(b, parallelism, g.HandleValues)
}

func benchAblationIngestSharded(b *testing.B, parallelism int) {
	srv := core.NewServer(core.ServerConfig{Cluster: "abl"})
	runIngestBench(b, parallelism, srv.HandleValues)
}

func BenchmarkAblationIngestGlobalLock1(b *testing.B)  { benchAblationIngestGlobalLock(b, 1) }
func BenchmarkAblationIngestGlobalLock64(b *testing.B) { benchAblationIngestGlobalLock(b, 64) }
func BenchmarkAblationIngestSharded1(b *testing.B)     { benchAblationIngestSharded(b, 1) }
func BenchmarkAblationIngestSharded64(b *testing.B)    { benchAblationIngestSharded(b, 64) }

// --- telemetry recording on/off ------------------------------------------------------
//
// The self-monitoring instrumentation rides the ingest hot path (striped
// atomic counters, histogram observes, span records). This pair measures
// its full cost on the identical workload as the E15/sharding benchmarks:
// the Off variant flips the global kill switch, reducing every record to
// one atomic load and a branch. The observability budget is < 5%
// throughput and 0 extra allocations per update.

func benchAblationTelemetry(b *testing.B, on bool, parallelism int) {
	prev := telemetry.SetEnabled(on)
	defer telemetry.SetEnabled(prev)
	srv := core.NewServer(core.ServerConfig{Cluster: "abl"})
	runIngestBench(b, parallelism, srv.HandleValues)
}

func BenchmarkAblationTelemetryOn1(b *testing.B)   { benchAblationTelemetry(b, true, 1) }
func BenchmarkAblationTelemetryOff1(b *testing.B)  { benchAblationTelemetry(b, false, 1) }
func BenchmarkAblationTelemetryOn64(b *testing.B)  { benchAblationTelemetry(b, true, 64) }
func BenchmarkAblationTelemetryOff64(b *testing.B) { benchAblationTelemetry(b, false, 64) }
