// Command cwxagent is a standalone ClusterWorX node agent: it simulates
// one cluster node (we have no spare Pentium IIIs), monitors it through
// the full gathering/consolidation pipeline, and streams change sets to a
// cwxd server over the compressed wire protocol.
//
//	cwxd &
//	cwxagent -server localhost:7701 -name node042 -load 0.8
package main

import (
	"flag"
	"log"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/core"
	"clusterworx/internal/node"
)

func main() {
	var (
		server      = flag.String("server", "localhost:7701", "cwxd agent address")
		name        = flag.String("name", "node000", "node hostname")
		load        = flag.Float64("load", 0.3, "offered run-queue depth of the simulated node")
		period      = flag.Duration("period", time.Second, "sampling period")
		antiEntropy = flag.Duration("anti-entropy", time.Minute, "full-snapshot refresh period (negative disables)")
		wireV1      = flag.Bool("wire-v1", false, "escape hatch: stay on the v1 text wire protocol, never offer the v2 upgrade")
	)
	flag.Parse()

	conn, err := core.DialAgent(*server, 5*time.Second)
	if err != nil {
		log.Fatalf("cwxagent: %v", err)
	}
	defer conn.Close()
	if *wireV1 {
		conn.DisableWireV2()
	}

	clk := clock.New()
	n := node.New(clk, node.Config{Name: *name})
	n.PowerOn()
	clk.Advance(10 * time.Second) // boot
	n.SetLoad(*load)

	agent, err := core.NewAgent(clk, core.AgentConfig{
		Node:        n,
		Period:      *period,
		SendFrame:   conn.SendFrame,
		AntiEntropy: *antiEntropy,
	})
	if err != nil {
		log.Fatalf("cwxagent: %v", err)
	}
	// The server answers sequence gaps with resync requests down the same
	// connection; feed them to the agent so the next tick ships a snapshot.
	conn.OnResync(func(string) { agent.RequestResync() })
	defer agent.Stop()
	log.Printf("cwxagent: %s reporting to %s every %v", *name, *server, *period)

	// Drive the node's virtual clock from wall time; agent ticks ride it.
	const step = 100 * time.Millisecond
	for {
		time.Sleep(step)
		clk.Advance(step)
		if agent.SendErrors() > 10 {
			log.Fatalf("cwxagent: server unreachable, giving up")
		}
	}
}
