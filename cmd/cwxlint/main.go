// Command cwxlint runs the repository's invariant analyzers — the
// per-function checks (hotpath, clockdet, lockscope, atomicmix) and the
// whole-program ones (lockorder, golife, staticalloc) — see
// internal/lint.
//
// Usage:
//
//	go run ./cmd/cwxlint [-root dir] [-baseline file] [-update-baseline]
//	    [-json] [-escapes] [-lockgraph file.dot]
//
// Exit code contract (stable, for CI and editor integration):
//
//	0 — clean: no fresh findings (baselined findings do not count)
//	1 — findings: at least one fresh finding was reported
//	2 — the analysis itself failed (load / type-check / build error)
//
// -json emits one self-contained JSON object per finding per line on
// stdout instead of the file:line:col text form. -escapes (on by
// default) feeds `go build -gcflags=-m` output to the staticalloc
// analyzer; disable it when no build cache is available. -lockgraph
// writes the whole-program lock-acquisition graph as Graphviz DOT and
// exits (CI uploads it as a build artifact).
//
// Accepted pre-existing findings live in .cwxlint-baseline at the module
// root; -update-baseline rewrites it from the current findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"clusterworx/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	baseline := flag.String("baseline", "", "baseline file (default <root>/"+lint.BaselineName+")")
	update := flag.Bool("update-baseline", false, "rewrite the baseline from current findings and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	escapes := flag.Bool("escapes", true, "run staticalloc against go build -gcflags=-m output")
	lockgraph := flag.String("lockgraph", "", "write the lock-acquisition graph as DOT to this file and exit")
	flag.Parse()

	if err := run(*root, *baseline, *lockgraph, *update, *jsonOut, *escapes); err != nil {
		fmt.Fprintln(os.Stderr, "cwxlint:", err)
		os.Exit(2)
	}
}

func run(root, baselinePath, lockgraph string, update, jsonOut, escapes bool) error {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	if baselinePath == "" {
		baselinePath = filepath.Join(absRoot, lint.BaselineName)
	}

	pkgs, module, err := lint.Load(absRoot)
	if err != nil {
		return err
	}
	cfg := lint.Config{Module: module}

	if lockgraph != "" {
		dot := lint.LockGraphDOT(pkgs, cfg)
		if lockgraph == "-" {
			fmt.Print(dot)
			return nil
		}
		if err := os.WriteFile(lockgraph, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("cwxlint: wrote lock-acquisition graph to %s\n", lockgraph)
		return nil
	}

	if escapes {
		esc, err := lint.GoBuildEscapes(absRoot, "./...")
		if err != nil {
			return err
		}
		cfg.Escapes = esc
	}

	diags := lint.Run(pkgs, cfg)

	if update {
		if err := lint.WriteBaseline(baselinePath, absRoot, diags); err != nil {
			return err
		}
		fmt.Printf("cwxlint: wrote %d finding(s) to %s\n", len(diags), baselinePath)
		return nil
	}

	base, err := lint.ReadBaseline(baselinePath)
	if err != nil {
		return err
	}
	fresh, stale := lint.ApplyBaseline(diags, absRoot, base)
	for _, k := range stale {
		fmt.Printf("cwxlint: stale baseline entry (no longer produced): %s\n", k)
	}
	if len(fresh) > 0 {
		for _, d := range fresh {
			if jsonOut {
				fmt.Println(d.JSON(absRoot))
				continue
			}
			rel := d
			if r, err := filepath.Rel(absRoot, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel.String())
		}
		if !jsonOut {
			fmt.Printf("cwxlint: %d finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		}
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Printf("cwxlint: ok (%d packages, %d baselined finding(s))\n", len(pkgs), len(diags)-len(fresh))
	}
	return nil
}
