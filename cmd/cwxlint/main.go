// Command cwxlint runs the repository's invariant analyzers (hotpath,
// clockdet, lockscope, atomicmix — see internal/lint) over the module
// and exits non-zero on fresh findings.
//
// Usage:
//
//	go run ./cmd/cwxlint [-root dir] [-baseline file] [-update-baseline]
//
// Accepted pre-existing findings live in .cwxlint-baseline at the module
// root; -update-baseline rewrites it from the current findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"clusterworx/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	baseline := flag.String("baseline", "", "baseline file (default <root>/"+lint.BaselineName+")")
	update := flag.Bool("update-baseline", false, "rewrite the baseline from current findings and exit")
	flag.Parse()

	if err := run(*root, *baseline, *update); err != nil {
		fmt.Fprintln(os.Stderr, "cwxlint:", err)
		os.Exit(2)
	}
}

func run(root, baselinePath string, update bool) error {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	if baselinePath == "" {
		baselinePath = filepath.Join(absRoot, lint.BaselineName)
	}

	pkgs, module, err := lint.Load(absRoot)
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, lint.Config{Module: module})

	if update {
		if err := lint.WriteBaseline(baselinePath, absRoot, diags); err != nil {
			return err
		}
		fmt.Printf("cwxlint: wrote %d finding(s) to %s\n", len(diags), baselinePath)
		return nil
	}

	base, err := lint.ReadBaseline(baselinePath)
	if err != nil {
		return err
	}
	fresh, stale := lint.ApplyBaseline(diags, absRoot, base)
	for _, k := range stale {
		fmt.Printf("cwxlint: stale baseline entry (no longer produced): %s\n", k)
	}
	if len(fresh) > 0 {
		for _, d := range fresh {
			rel := d
			if r, err := filepath.Rel(absRoot, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel.String())
		}
		fmt.Printf("cwxlint: %d finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("cwxlint: ok (%d packages, %d baselined finding(s))\n", len(pkgs), len(diags)-len(fresh))
	return nil
}
