// Command cwxd is the ClusterWorX management server daemon. It listens on
// two TCP ports: one for node agents (framed, compressed monitor data —
// the §5.3.3 wire protocol) and one for control clients (cwxctl, or any
// line-oriented tool).
//
// With -sim-nodes N it additionally hosts a simulated cluster in-process —
// nodes, ICE boxes, agents — whose virtual clock tracks wall time, so a
// single binary demonstrates the whole stack:
//
//	cwxd -sim-nodes 16 &
//	cwxctl status
//	cwxctl power cycle node003
//
// With -uplink it federates: the server forwards its consolidated
// change stream — batched, change-only — to a parent cwxd's agent port,
// so a tree of daemons scales past what one master can ingest:
//
//	cwxd -agent-addr :7801 -ctl-addr :7802 -rollup grid/root,rack/ & # parent tier
//	cwxd -sim-nodes 16 -uplink localhost:7801 -rollup rack/leaf0 &   # leaf tier
//	cwxctl -addr localhost:7802 status                               # whole grid
//
// -rollup makes a tier publish subtree aggregate series
// (count/min/max/sum per metric) through its own ingest pipeline, so
// upper-tier queries are O(subtrees) instead of O(nodes).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only with -pprof
	"os"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/core"
	"clusterworx/internal/events"
	"clusterworx/internal/flight"
)

func main() {
	var (
		agentAddr   = flag.String("agent-addr", ":7701", "listen address for node agents")
		ctlAddr     = flag.String("ctl-addr", ":7702", "listen address for control clients")
		cluster     = flag.String("cluster", "cluster", "cluster name used in notifications")
		simNodes    = flag.Int("sim-nodes", 0, "host this many simulated nodes in-process")
		rulesFile   = flag.String("rules", "", "event rule file (replaces the built-in defaults)")
		histFile    = flag.String("history-file", "", "persist monitor history to this file (loaded at start, saved every minute)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060; empty disables)")
		selfMon     = flag.Duration("self-monitor", 10*time.Second, "meta-monitor period: ingest the server's own telemetry as node "+core.MetaNodeName+" (0 disables)")
		flightN     = flag.Int("flight-rate", flight.DefaultRate, "causal-trace sampling: trace 1 in N agent ticks (min 1)")
		flightOff   = flag.Bool("flight-off", false, "kill switch: disable the flight recorder and all trace sampling")
		wireV1      = flag.Bool("wire-v1", false, "escape hatch: ignore v2 wire offers so every agent session stays on the v1 text protocol")
		uplink      = flag.String("uplink", "", "federate: forward this server's consolidated change stream to a parent cwxd's agent port (host:port)")
		uplinkEvery = flag.Duration("uplink-period", time.Second, "uplink flush cadence: changed nodes are batched upstream this often")
		uplinkAE    = flag.Duration("uplink-anti-entropy", 5*time.Minute, "periodic full-state uplink flush so a wedged parent re-converges (0 disables)")
		uplinkV1    = flag.Bool("uplink-v1", false, "pin the uplink to v1 per-node frames (for a parent that predates the batch wire)")
		rollupSpec  = flag.String("rollup", "", "publish a subtree aggregate node: <agg-name> folds raw children (leaf tier, e.g. rack/leaf0), <agg-name>,<child-prefix> composes child aggregates (upper tier, e.g. grid/root,rack/); ticks with -uplink-period")
	)
	flag.Parse()
	if *flightOff {
		flight.Default().SetEnabled(false)
	}
	if *flightN > 0 {
		flight.SetRate(*flightN)
	}

	var srv *core.Server
	if *simNodes > 0 {
		sim, err := core.NewSim(core.SimConfig{Nodes: *simNodes, Cluster: *cluster})
		if err != nil {
			log.Fatalf("cwxd: %v", err)
		}
		srv = sim.Server
		installRules(srv, *rulesFile)
		sim.PowerOnAll()
		// The wall-time clock driver and ctl-initiated cloning sessions
		// both execute virtual-clock events; a mutex keeps them exclusive.
		var simMu sync.Mutex
		srv.SetCloner(func(imageID string, nodeNames []string) (string, error) {
			simMu.Lock()
			defer simMu.Unlock()
			im, ok := srv.Images().Get(imageID)
			if !ok {
				return "", fmt.Errorf("unknown image %s", imageID)
			}
			res, err := sim.Clone(im, nodeNames, 0.01, cloning.Params{})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("cloned %s to %d node(s) in %s (virtual)",
				imageID, len(res.NodeUp), res.AllUp.Round(time.Second)), nil
		})
		//cwx:daemon simulation time driver runs for the process lifetime
		go func() {
			const step = 100 * time.Millisecond
			for {
				time.Sleep(step)
				simMu.Lock()
				sim.Advance(step)
				simMu.Unlock()
			}
		}()
		log.Printf("cwxd: hosting %d simulated nodes in %d ICE boxes", *simNodes, len(sim.Boxes))
	} else {
		// A hardware deployment also routes the server's time source
		// through internal/clock rather than reading the wall per call:
		// one driver goroutine steps virtual time along wall time, so
		// every history-window end and watch diff is computed against a
		// single monotone timeline — the same code path the simulation
		// exercises deterministically.
		clk := clock.New()
		srv = core.NewServer(core.ServerConfig{Cluster: *cluster, Now: clk.Now})
		installRules(srv, *rulesFile)
		//cwx:daemon wall-clock driver steps the virtual clock for the process lifetime
		go func() {
			t0 := time.Now()
			const step = 100 * time.Millisecond
			for range time.Tick(step) {
				clk.RunUntil(time.Since(t0))
			}
		}()
	}

	if *histFile != "" {
		if f, err := os.Open(*histFile); err == nil {
			if err := srv.History().LoadFrom(f); err != nil {
				log.Printf("cwxd: history load: %v", err)
			} else {
				log.Printf("cwxd: history restored from %s", *histFile)
			}
			f.Close()
		}
		//cwx:daemon periodic history persistence runs for the process lifetime
		go func() {
			for range time.Tick(time.Minute) {
				if err := saveHistory(srv, *histFile); err != nil {
					log.Printf("cwxd: history save: %v", err)
				}
			}
		}()
	}

	if *selfMon > 0 {
		meta := core.NewMetaMonitor(srv)
		//cwx:daemon self-monitor tick loop runs for the process lifetime
		go func() {
			for range time.Tick(*selfMon) {
				meta.Tick()
			}
		}()
		log.Printf("cwxd: self-monitoring as %q every %s", core.MetaNodeName, *selfMon)
	}

	if *pprofAddr != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := srv.WriteTelemetry(w); err != nil {
				log.Printf("cwxd: /metrics: %v", err)
			}
		})
		go func() {
			log.Printf("cwxd: pprof and /metrics on http://%s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("cwxd: pprof server: %v", err)
			}
		}()
	}

	if *wireV1 {
		srv.SetWireV1Only(true)
		log.Printf("cwxd: -wire-v1: agent sessions pinned to the v1 text protocol")
	}
	var rollup *core.Rollup
	if *rollupSpec != "" {
		agg, childPrefix, ok := strings.Cut(*rollupSpec, ",")
		if !ok {
			childPrefix = ""
		}
		if agg == "" {
			log.Fatalf("cwxd: -rollup %q: aggregate node name is empty (want <agg-name>[,<child-prefix>])", *rollupSpec)
		}
		rollup = core.NewRollup(srv, agg, childPrefix)
		if childPrefix == "" {
			log.Printf("cwxd: rollup: folding raw children into %q every %s", agg, *uplinkEvery)
		} else {
			log.Printf("cwxd: rollup: composing %s* aggregates into %q every %s", childPrefix, agg, *uplinkEvery)
		}
	}
	if *uplink != "" {
		uc := core.StartUplink(srv, core.UplinkClientConfig{
			Addr:        *uplink,
			Period:      *uplinkEvery,
			AntiEntropy: *uplinkAE,
			V1Only:      *uplinkV1,
			Rollup:      rollup,
		})
		defer uc.Close()
		log.Printf("cwxd: federating: uplink to %s every %s", *uplink, *uplinkEvery)
	} else if rollup != nil {
		rr := core.StartRollup(rollup, *uplinkEvery)
		defer rr.Close()
	}
	agentL, err := net.Listen("tcp", *agentAddr)
	if err != nil {
		log.Fatalf("cwxd: agent listener: %v", err)
	}
	ctlL, err := net.Listen("tcp", *ctlAddr)
	if err != nil {
		log.Fatalf("cwxd: ctl listener: %v", err)
	}
	log.Printf("cwxd: cluster %q, agents on %s, control on %s", *cluster, agentL.Addr(), ctlL.Addr())

	errc := make(chan error, 2)
	go func() { errc <- srv.ServeAgents(agentL) }()
	go func() { errc <- srv.ServeCtl(ctlL) }()
	if err := <-errc; err != nil {
		fmt.Fprintln(os.Stderr, "cwxd:", err)
		os.Exit(1)
	}
}

// installRules arms the event rules: the administrator's rule file when
// given, otherwise the protective defaults every deployment ships with.
func installRules(srv *core.Server, rulesFile string) {
	if rulesFile != "" {
		f, err := os.Open(rulesFile)
		if err != nil {
			log.Fatalf("cwxd: %v", err)
		}
		defer f.Close()
		rules, err := events.ParseRules(f)
		if err != nil {
			log.Fatalf("cwxd: %v", err)
		}
		for _, r := range rules {
			if err := srv.Engine().AddRule(r); err != nil {
				log.Fatalf("cwxd: rule %s: %v", r.Name, err)
			}
		}
		log.Printf("cwxd: %d event rules loaded from %s", len(rules), rulesFile)
		return
	}
	for _, r := range []events.Rule{
		{Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85, Action: events.ActPowerOff, Notify: true},
		{Name: "fan-failure", Metric: "hw.fan.ok", Op: events.LT, Threshold: 1, Sustain: 2, Notify: true},
		{Name: "swap-storm", Metric: "swap.used.pct", Op: events.GT, Threshold: 90, Notify: true},
		{Name: "load-runaway", Metric: "load.1", Op: events.GT, Threshold: 50, Sustain: 5, Notify: true},
	} {
		if err := srv.Engine().AddRule(r); err != nil {
			log.Fatalf("cwxd: rule %s: %v", r.Name, err)
		}
	}
}

// saveHistory writes the store atomically via a temp file rename.
func saveHistory(srv *core.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.History().SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
