// Command cwxctl is the ClusterWorX administrator CLI: it sends one
// control request to a cwxd server and prints the response.
//
//	cwxctl status
//	cwxctl values node003
//	cwxctl history node003 load.1 50
//	cwxctl power cycle node003
//	cwxctl console node003
//	cwxctl eventlog
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusterworx/internal/core"
)

func main() {
	server := flag.String("server", "localhost:7702", "cwxd control address")
	watch := flag.Duration("watch", 0, "re-issue the request at this interval (e.g. -watch 2s)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cwxctl [-server host:port] <request...>

requests:
  status | nodes | values <node> | value <node> <metric>
  history <node> <metric> [n] | trend <node> <metric>
  chart <node> <metric> | spark <node> <metric>
  compare <metric> | correlate <node> <m1> <m2>
  power on|off|cycle <node> | reset <node> | console <node>
  bios settings|set|flash <node> [...]
  clone <imageID> <node...> | images | efficiency
  rules | eventlog [n] | ping
  telemetry | trace [node] | selfmon | sync
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	client, err := core.DialCtl(*server, 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cwxctl:", err)
		os.Exit(1)
	}
	defer client.Close()

	req := strings.Join(flag.Args(), " ")
	for {
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwxctl:", err)
			os.Exit(1)
		}
		// Strip the leading OK token for clean shell output.
		resp = strings.TrimPrefix(resp, "OK")
		resp = strings.TrimPrefix(resp, " ")
		resp = strings.TrimPrefix(resp, "\n")
		if *watch <= 0 {
			if resp != "" {
				fmt.Println(resp)
			}
			return
		}
		// Watch mode: clear the screen and redraw, like watch(1).
		fmt.Printf("\x1b[2J\x1b[H%s  (every %s)\n\n%s\n", req, *watch, resp)
		time.Sleep(*watch)
	}
}
