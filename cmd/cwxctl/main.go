// Command cwxctl is the ClusterWorX administrator CLI: it sends one
// control request to a cwxd server and prints the response.
//
//	cwxctl status
//	cwxctl values node003
//	cwxctl history node003 load.1 50
//	cwxctl power cycle node003
//	cwxctl console node003
//	cwxctl eventlog
//
// "cwxctl watch <verb>" holds the connection open and lets the server
// push change-only diffs (no polling — the screen redraws only when the
// view actually changed):
//
//	cwxctl watch status
//	cwxctl watch compare load.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusterworx/internal/core"
	"clusterworx/internal/serve"
)

func main() {
	server := flag.String("server", "localhost:7702", "cwxd control address")
	watch := flag.Duration("watch", 0, "re-issue the request at this interval (e.g. -watch 2s)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cwxctl [-server host:port] <request...>

requests:
  status | nodes | values <node> | value <node> <metric>
  history <node> <metric> [n] | trend <node> <metric>
  chart <node> <metric> | spark <node> <metric>
  compare <metric> | correlate <node> <m1> <m2>
  power on|off|cycle <node> | reset <node> | console <node>
  bios settings|set|flash <node> [...]
  clone <imageID> <node...> | images | efficiency
  rules | eventlog [n] | ping
  telemetry | trace [-json] [node] | selfmon | sync
  journal [-json] [since <seq>]      flight-recorder ring, oldest first
  flight [-json] <trace-id|node>     span tree of one sampled frame
  watch <verb> [args]   server-pushed change-only stream
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	client, err := core.DialCtl(*server, 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cwxctl:", err)
		os.Exit(1)
	}
	defer client.Close()

	req := strings.Join(flag.Args(), " ")
	if strings.EqualFold(flag.Arg(0), "watch") {
		runWatch(client, req)
		return
	}
	for {
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwxctl:", err)
			os.Exit(1)
		}
		// Strip the leading OK token for clean shell output.
		resp = strings.TrimPrefix(resp, "OK")
		resp = strings.TrimPrefix(resp, " ")
		resp = strings.TrimPrefix(resp, "\n")
		if *watch <= 0 {
			if resp != "" {
				fmt.Println(resp)
			}
			return
		}
		// Watch mode: clear the screen and redraw, like watch(1).
		fmt.Printf("\x1b[2J\x1b[H%s  (every %s)\n\n%s\n", req, *watch, resp)
		time.Sleep(*watch)
	}
}

// runWatch enters streaming mode: the server pushes an initial snapshot
// and then one block per actual change — UPDATE diffs are folded into a
// local view, RESYNC/REFRESH replace it — and the screen redraws only
// when something changed.
func runWatch(client *core.CtlClient, req string) {
	if err := client.Send(req); err != nil {
		fmt.Fprintln(os.Stderr, "cwxctl:", err)
		os.Exit(1)
	}
	var v serve.View
	for {
		block, err := client.ReadBlock()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwxctl: stream ended:", err)
			os.Exit(1)
		}
		if strings.HasPrefix(block, "ERR") {
			fmt.Fprintln(os.Stderr, "cwxctl: server:", strings.TrimPrefix(strings.TrimPrefix(block, "ERR"), " "))
			os.Exit(1)
		}
		kind, gen, lines, err := serve.ParseBlock(block)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwxctl:", err)
			os.Exit(1)
		}
		switch kind {
		case serve.BlockUpdate:
			if err := v.Apply(lines); err != nil {
				fmt.Fprintln(os.Stderr, "cwxctl: corrupt diff:", err)
				os.Exit(1)
			}
		default: // initial "OK", RESYNC, REFRESH: full rendering
			v.SetFull(lines)
		}
		fmt.Printf("\x1b[2J\x1b[H%s  (streaming, gen %d)\n\n%s\n", req, gen, v.Render())
	}
}
