// Command cwxsim is the all-in-one ClusterWorX simulator and experiment
// driver. It either regenerates the paper's evaluation tables
// (-experiment) or runs an interactive-scale simulated cluster and prints
// its monitoring screen (-nodes/-run).
//
// Usage:
//
//	cwxsim -experiment all            # every paper table (E1..E15)
//	cwxsim -experiment e1,e7          # selected experiments
//	cwxsim -experiment e7 -full       # paper-scale 400-node/2GB cloning run
//	cwxsim -nodes 40 -run 10m         # simulate a cluster, print status
//	cwxsim -topology tree:2,2 -nodes 8 -run 5m
//	                                  # 2-tier federation: 2 leaf servers
//	                                  # x 8 nodes uplinked to one root
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusterworx/internal/core"
	"clusterworx/internal/dashboard"
	"clusterworx/internal/events"
	"clusterworx/internal/experiments"
	"clusterworx/internal/flight"
	"clusterworx/internal/image"
	"clusterworx/internal/serve"
)

func main() {
	var (
		exp   = flag.String("experiment", "", "comma-separated experiment ids (e1..e16) or 'all'")
		full  = flag.Bool("full", false, "paper-scale parameters (E7: 400+ nodes, 2 GB image; slower)")
		bench = flag.Duration("benchtime", 200*time.Millisecond, "minimum timing window for the E1-E4 micro measurements")
		nodes = flag.Int("nodes", 16, "cluster size for -run mode (per leaf server with -topology)")
		run   = flag.Duration("run", 0, "simulate a cluster for this much virtual time and print status")
		topo  = flag.String("topology", "", "federate -run mode: tree:<fanout>,<tiers> builds a server tree whose leaves host -nodes each and forward batched deltas upstream")
	)
	flag.Parse()

	switch {
	case *exp != "":
		if err := runExperiments(*exp, *full, *bench); err != nil {
			fmt.Fprintln(os.Stderr, "cwxsim:", err)
			os.Exit(1)
		}
	case *run > 0 && *topo != "":
		fanout, tiers, err := parseTopology(*topo)
		if err == nil {
			err = runTree(*nodes, fanout, tiers, *run)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwxsim:", err)
			os.Exit(1)
		}
	case *run > 0:
		if err := runCluster(*nodes, *run); err != nil {
			fmt.Fprintln(os.Stderr, "cwxsim:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runExperiments regenerates the requested paper tables.
func runExperiments(list string, full bool, benchtime time.Duration) error {
	want := map[string]bool{}
	all := list == "all"
	for _, id := range strings.Split(strings.ToLower(list), ",") {
		want[strings.TrimSpace(id)] = true
	}
	sel := func(id string) bool { return all || want[strings.ToLower(id)] }

	type runner struct {
		id string
		fn func() (*experiments.Table, error)
	}
	cloneImg := image.New("lnxi-node", "2.1", image.BootDisk, 96<<20)
	cloneCounts := []int{10, 50, 100, 200}
	unicastCap := 50
	lossNodes := 12
	lossImg := image.New("lnxi-node", "2.1", image.BootDisk, 16<<20)
	if full {
		// The LLNL configuration: 400+ nodes, a production-size image.
		// Large chunks keep the event count tractable; bandwidth math is
		// unchanged.
		cloneImg = image.NewWithChunkSize("llnl-prod", "1.0", image.BootDisk, 2<<30, 512<<10)
		cloneCounts = []int{100, 200, 400}
		unicastCap = 0 // unicast at 400 nodes x 2 GB is hours; skip
		lossNodes = 40
	}

	runners := []runner{
		{"E1", func() (*experiments.Table, error) { return experiments.E1GatherLadder(benchtime) }},
		{"E2", func() (*experiments.Table, error) { return experiments.E2PerFileCosts(benchtime) }},
		{"E3", func() (*experiments.Table, error) { return experiments.E3ParserComparison(benchtime) }},
		{"E4", func() (*experiments.Table, error) { return experiments.E4OverheadBudget(benchtime) }},
		{"E5", func() (*experiments.Table, error) { return experiments.E5Consolidation(300) }},
		{"E6", experiments.E6Compression},
		{"E7", func() (*experiments.Table, error) {
			return experiments.E7CloneScaling(cloneCounts, cloneImg, unicastCap)
		}},
		{"E8", func() (*experiments.Table, error) {
			return experiments.E8CloneLoss([]float64{0.01, 0.05, 0.10, 0.20}, lossNodes, lossImg)
		}},
		{"E9", experiments.E9BootTimes},
		{"E10", func() (*experiments.Table, error) { return experiments.E10Notification(100) }},
		{"E11", experiments.E11ThermalRunaway},
		{"E12", experiments.E12PowerSequencing},
		{"E13", experiments.E13Console},
		{"E14", experiments.E14Slurm},
		{"E15", func() (*experiments.Table, error) { return experiments.E15Update(40) }},
		{"E16", func() (*experiments.Table, error) { return experiments.E16Schedulers(16, 60, 42) }},
	}

	ran := 0
	for _, r := range runners {
		if !sel(r.id) {
			continue
		}
		tab, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Println(tab.String())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q (want e1..e16 or all)", list)
	}
	return nil
}

// parseTopology parses a "tree:<fanout>,<tiers>" topology spec.
func parseTopology(s string) (fanout, tiers int, err error) {
	if _, serr := fmt.Sscanf(s, "tree:%d,%d", &fanout, &tiers); serr != nil || fanout < 1 || tiers < 2 {
		return 0, 0, fmt.Errorf("bad -topology %q (want tree:<fanout>,<tiers> with fanout >= 1, tiers >= 2)", s)
	}
	return fanout, tiers, nil
}

// runTree boots a federated server tree on one simulated fabric: leaf
// servers ingest real agents, every tier forwards batched change-only
// deltas up its uplink, and the root mirrors the whole grid plus
// per-subtree aggregates.
func runTree(perLeaf, fanout, tiers int, dur time.Duration) error {
	fed, err := core.NewFedSim(core.FedConfig{
		Fanout: fanout, Tiers: tiers, NodesPerLeaf: perLeaf, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer fed.Stop()

	fmt.Printf("powering on %d nodes under %d leaf servers (%d tiers, fanout %d)...\n",
		fed.TotalNodes(), len(fed.Leaves), tiers, fanout)
	fed.PowerOnAll()
	fed.Advance(30 * time.Second)
	for _, leaf := range fed.Leaves {
		for i, n := range leaf.Sim.Nodes {
			n.SetLoad(float64(i%4) * 0.5)
		}
	}
	fed.Advance(dur)

	fmt.Printf("\n== root: whole-grid view ==\n%s\n", fed.Root.Server.HandleCtl("status"))
	fmt.Printf("== root: subtree aggregates (%s) ==\n", core.RootAggNode)
	for _, v := range fed.Root.Server.NodeValues(core.RootAggNode) {
		if !v.IsText {
			fmt.Printf("  %-28s %g\n", v.Name, v.Num)
		}
	}

	var up core.UplinkStats
	sessions := 0
	for _, lvl := range fed.Levels[:tiers-1] {
		for _, fs := range lvl {
			st := fs.Uplink.Stats()
			up.Frames += st.Frames
			up.V1Frames += st.V1Frames
			up.Nodes += st.Nodes
			up.Bytes += st.Bytes
			sessions++
		}
	}
	in := fed.Root.Server.UplinkInStats()
	fmt.Printf("\nuplinks: %d sessions forwarded %d node sections in %d batch frames (%d B on the wire); root ingested %d frames, %d desyncs\n",
		sessions, up.Nodes, up.Frames, up.Bytes, in.Frames, in.Desyncs)
	return nil
}

// runCluster boots a simulated cluster, injects a little life, and prints
// the monitoring screen plus event activity.
func runCluster(nodes int, dur time.Duration) error {
	sim, err := core.NewSim(core.SimConfig{Nodes: nodes, Cluster: "cwxsim"})
	if err != nil {
		return err
	}
	defer sim.Stop()

	// The standard protective rule set.
	rules := []events.Rule{
		{Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85, Action: events.ActPowerOff, Notify: true},
		{Name: "fan-failure", Metric: "hw.fan.ok", Op: events.LT, Threshold: 1, Sustain: 2, Notify: true},
		{Name: "swap-storm", Metric: "swap.used.pct", Op: events.GT, Threshold: 90, Notify: true},
	}
	for _, r := range rules {
		if err := sim.Server.Engine().AddRule(r); err != nil {
			return err
		}
	}

	fmt.Printf("powering on %d nodes across %d ICE boxes (sequenced)...\n", nodes, len(sim.Boxes))
	sim.PowerOnAll()
	sim.Advance(30 * time.Second)

	// Offer a mixed workload and one fault for the engine to catch.
	for i, n := range sim.Nodes {
		n.SetLoad(float64(i%4) * 0.5)
	}
	if nodes > 2 {
		sim.Nodes[2].SetLoad(1)
		sim.Advance(2 * time.Minute)
		sim.Nodes[2].FailFan()
	}
	sim.Advance(dur)

	fmt.Printf("\n%s\n", sim.Server.HandleCtl("status"))
	fmt.Printf("\n%s\n", sim.Server.HandleCtl("efficiency"))
	fmt.Printf("\n%s\n", sim.Server.HandleCtl("eventlog"))
	st := serve.ReadStats()
	fmt.Printf("\nserving plane: %d hits, %d rebuilds, %d coalesced\n", st.Hits, st.Misses, st.Coalesced)
	fj := flight.Default()
	fmt.Printf("flight recorder: %d records journaled (ring retains %d); newest:\n", fj.Cursor(), flight.Capacity())
	fmt.Print(dashboard.FlightPanel(fj.Since(0, 5)))
	if sim.Mailer != nil {
		fmt.Printf("\nnotifications sent: %d\n", sim.Mailer.Count())
		for _, m := range sim.Mailer.Messages() {
			fmt.Printf("--- %s\n%s\n", m.Subject, m.Body)
		}
	}
	return nil
}
