// Allocation-regression gates: the structural side of this invariant is
// cwxlint's hotpath analyzer; these tests are the empirical side, pinning
// the numbers the E6/E15/E18 benchmarks report so a regression fails
// `go test` rather than silently shifting a benchmark.
package clusterworx

import (
	"bytes"
	"testing"

	"clusterworx/internal/core"
	"clusterworx/internal/transmit"
)

// skipUnderRace skips allocation gates when the race detector is on:
// race-runtime bookkeeping shows up in testing.AllocsPerRun, so the
// counts only pin the real hot path in an uninstrumented build.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts include race-detector instrumentation")
	}
}

// TestAllocGateLosslessIngest pins the steady-state unsequenced ingest
// path (E15's shape) at zero allocations per update.
func TestAllocGateLosslessIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	names := ingestNodeNames()
	full := ingestFullSet()
	for _, name := range names {
		srv.HandleValues(name, full)
	}
	deltas := ingestDeltaSets()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		srv.HandleValues(names[i%len(names)], deltas[i%len(deltas)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("lossless ingest allocates %.1f times per update, want 0", allocs)
	}
}

// TestAllocGateSequencedIngest pins the loss-tolerant protocol's happy
// path (E18's shape): in-order sequenced deltas must also be
// allocation-free — the gap-detection bookkeeping is integer compares
// under the per-node lock already held.
func TestAllocGateSequencedIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	full := ingestFullSet()
	deltas := ingestDeltaSets()
	const node = "fnode0001"
	if err := srv.HandleFrame(transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: full}); err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		f := transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta, Values: deltas[i%len(deltas)]}
		if err := srv.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("sequenced ingest allocates %.1f times per update, want 0", allocs)
	}
}

// TestAllocGateWireRoundtrip pins the compressed wire path (E6's shape):
// marshal + frame + deflate on the agent side, decode + inflate on the
// server side, at most one allocation per roundtrip (amortized scratch
// growth rounds to ≤1; steady state is 0).
func TestAllocGateWireRoundtrip(t *testing.T) {
	skipUnderRace(t)
	payload := transmit.MarshalFrame(nil, transmit.Frame{
		Node: "node042", Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet(),
	})
	var wire bytes.Buffer
	w := transmit.NewWriter(&wire, true)
	r := transmit.NewReader(&wire)
	roundtrip := func() {
		if err := w.WriteFrame(payload); err != nil {
			t.Fatal(err)
		}
		out, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(payload) {
			t.Fatalf("roundtrip returned %d bytes, want %d", len(out), len(payload))
		}
	}
	roundtrip() // warm the reader's scratch buffers off the measured path
	allocs := testing.AllocsPerRun(200, roundtrip)
	if allocs > 1 {
		t.Fatalf("wire roundtrip allocates %.1f times, want at most 1", allocs)
	}
}
