// Allocation-regression gates: the structural side of this invariant is
// cwxlint's hotpath analyzer; these tests are the empirical side, pinning
// the numbers the E6/E15/E18 benchmarks report so a regression fails
// `go test` rather than silently shifting a benchmark.
package clusterworx

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
	"clusterworx/internal/flight"
	"clusterworx/internal/history"
	"clusterworx/internal/transmit"
)

// skipUnderRace skips allocation gates when the race detector is on:
// race-runtime bookkeeping shows up in testing.AllocsPerRun, so the
// counts only pin the real hot path in an uninstrumented build.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts include race-detector instrumentation")
	}
}

// TestAllocGateLosslessIngest pins the steady-state unsequenced ingest
// path (E15's shape) at zero allocations per update.
func TestAllocGateLosslessIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	names := ingestNodeNames()
	full := ingestFullSet()
	for _, name := range names {
		srv.HandleValues(name, full)
	}
	deltas := ingestDeltaSets()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		srv.HandleValues(names[i%len(names)], deltas[i%len(deltas)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("lossless ingest allocates %.1f times per update, want 0", allocs)
	}
}

// TestAllocGateSequencedIngest pins the loss-tolerant protocol's happy
// path (E18's shape): in-order sequenced deltas must also be
// allocation-free — the gap-detection bookkeeping is integer compares
// under the per-node lock already held.
func TestAllocGateSequencedIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	full := ingestFullSet()
	deltas := ingestDeltaSets()
	const node = "fnode0001"
	if err := srv.HandleFrame(transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: full}); err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		f := transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta, Values: deltas[i%len(deltas)]}
		if err := srv.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("sequenced ingest allocates %.1f times per update, want 0", allocs)
	}
}

// TestAllocGateHistoryHeadAppend pins the block engine's head-block
// append (E19's shape) at zero allocations: in-order points land as two
// word writes into the preallocated head arrays. (Seal allocations are
// amortized — one block per 512 appends — and the 200-run window below
// stays inside one head block, so any seal inside it would fail the gate.)
func TestAllocGateHistoryHeadAppend(t *testing.T) {
	skipUnderRace(t)
	s := history.NewSeries(1 << 20)
	ts := time.Duration(0)
	s.Append(ts, 1) // touch the series off the measured path
	allocs := testing.AllocsPerRun(200, func() {
		ts += time.Second
		s.Append(ts, 40.5)
	})
	if allocs != 0 {
		t.Fatalf("head append allocates %.1f times per point, want 0", allocs)
	}
}

// TestAllocGateHistoryBytesPerSample pins the compression ratio the E19
// benchmark reports: a monitor-shaped stream (1 s cadence, quantized
// dwelling values — the §5.3.2 change-suppressed shape) must cost at
// most 2 bytes/sample including block metadata, ≥8× under the naive
// ring's 16.
func TestAllocGateHistoryBytesPerSample(t *testing.T) {
	const n = 1 << 16
	s := history.NewSeries(n)
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Second, 40+float64((i/64)%32)*0.5)
	}
	if perSample := float64(s.Bytes()) / float64(s.Len()); perSample > 2.0 {
		t.Fatalf("history stores monitor stream at %.2f B/sample, want <= 2", perSample)
	}
}

// TestAllocGateServeHit pins the serving plane's cached read path (E20's
// shape) at zero allocations: with the generation unmoved, every ctl
// verb answers with a prebuilt string via an atomic pointer load, and
// Status() shares one immutable row slice across readers. The clock is
// frozen so the status snapshot's liveness deadline never passes inside
// the measurement.
func TestAllocGateServeHit(t *testing.T) {
	skipUnderRace(t)
	now := int64(time.Second)
	srv := core.NewServer(core.ServerConfig{
		Cluster: "allocgate",
		Now:     func() time.Duration { return time.Duration(atomic.LoadInt64(&now)) },
	})
	names := ingestNodeNames()
	full := ingestFullSet()
	for _, name := range names {
		srv.HandleValues(name, full)
	}
	reqs := []string{
		"status",
		"nodes",
		"values " + names[0],
		"compare metric.00",
		"chart " + names[1] + " metric.01",
		"spark " + names[2] + " metric.02",
		"sync",
	}
	for _, req := range reqs {
		req := req
		if resp := srv.HandleCtl(req); !strings.HasPrefix(resp, "OK") {
			t.Fatalf("%s failed: %.80s", req, resp)
		}
		allocs := testing.AllocsPerRun(200, func() {
			srv.HandleCtl(req)
		})
		if allocs != 0 {
			t.Fatalf("cached %q allocates %.1f times per hit, want 0", req, allocs)
		}
	}
	srv.Status() // warm the snapshot the API path shares
	allocs := testing.AllocsPerRun(200, func() {
		if rows := srv.Status(); len(rows) != len(names) {
			t.Fatalf("status rows = %d, want %d", len(rows), len(names))
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Status() allocates %.1f times per call, want 0", allocs)
	}
}

// TestAllocGateWireRoundtrip pins the compressed wire path (E6's shape):
// marshal + frame + deflate on the agent side, decode + inflate on the
// server side, at zero allocations per roundtrip. (This was 1 until the
// Reader's header scratch moved into the struct — a local escaped to the
// heap through the io.ReadFull interface call on every frame.)
func TestAllocGateWireRoundtrip(t *testing.T) {
	skipUnderRace(t)
	payload := transmit.MarshalFrame(nil, transmit.Frame{
		Node: "node042", Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet(),
	})
	var wire bytes.Buffer
	w := transmit.NewWriter(&wire, true)
	r := transmit.NewReader(&wire)
	roundtrip := func() {
		if err := w.WriteFrame(payload); err != nil {
			t.Fatal(err)
		}
		out, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(payload) {
			t.Fatalf("roundtrip returned %d bytes, want %d", len(out), len(payload))
		}
	}
	roundtrip() // warm the reader's scratch buffers off the measured path
	allocs := testing.AllocsPerRun(200, roundtrip)
	if allocs != 0 {
		t.Fatalf("wire roundtrip allocates %.1f times, want 0", allocs)
	}
}

// TestAllocGateFlightAppend pins the flight recorder's journal append
// (E21's shape) at zero allocations: one CAS claim plus eight atomic
// stores into a preallocated ring slot. This is what lets the recorder
// stay always-on under the ingest hot path.
func TestAllocGateFlightAppend(t *testing.T) {
	skipUnderRace(t)
	j := flight.NewJournal()
	node := j.Sym("node042") // interning is setup-time, off the measured path
	e := flight.Entry{Kind: flight.KindStage, Stage: 3, Node: node, Trace: 0xfeed, TimeNs: 1, A: 2, B: 3}
	allocs := testing.AllocsPerRun(200, func() {
		j.Append(0, e)
	})
	if allocs != 0 {
		t.Fatalf("journal append allocates %.1f times, want 0", allocs)
	}
}

// TestAllocGateFlightUnsampledTick pins the cost a NON-sampled agent
// tick pays for tracing — one modular check — at zero allocations, and
// the sampled path's id mint at zero too (it is pure integer mixing).
func TestAllocGateFlightUnsampledTick(t *testing.T) {
	skipUnderRace(t)
	salt := flight.Salt("node042")
	var n uint64
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		n++
		sink += flight.NextTrace(salt, n)
	})
	if allocs != 0 {
		t.Fatalf("trace sampling decision allocates %.1f times, want 0", allocs)
	}
	_ = sink
}

// TestAllocGateTracedIngest pins the sequenced ingest path carrying a
// trace context: the journal append and exemplar CAS it adds over
// TestAllocGateSequencedIngest must also be free.
func TestAllocGateTracedIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	full := ingestFullSet()
	deltas := ingestDeltaSets()
	const node = "fnode0001"
	if err := srv.HandleFrame(transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: full}); err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		f := transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta,
			Values: deltas[i%len(deltas)], TraceID: seq | 1, TraceNs: int64(seq)}
		if err := srv.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("traced sequenced ingest allocates %.1f times per update, want 0", allocs)
	}
}

// TestAllocGateTracedMarshal pins the wire cost of carrying the trace
// option: marshaling a traced frame into a reused buffer allocates
// nothing beyond the untraced path.
func TestAllocGateTracedMarshal(t *testing.T) {
	skipUnderRace(t)
	f := transmit.Frame{Node: "node042", Seq: 9, Kind: transmit.FrameDelta,
		Values: ingestFullSet(), TraceID: 0xabcdef0123456789, TraceNs: 1 << 40}
	buf := transmit.MarshalFrame(nil, f) // size the scratch off the measured path
	allocs := testing.AllocsPerRun(200, func() {
		buf = transmit.MarshalFrame(buf[:0], f)
	})
	if allocs != 0 {
		t.Fatalf("traced marshal allocates %.1f times, want 0", allocs)
	}
}

// TestAllocGateV2Marshal pins the v2 binary encoder's steady state (the
// E22 shape) at zero allocations: once the dictionary is interned and
// the scratch buffers are sized, a delta frame is varint appends and
// XOR bit-writes into reused memory.
func TestAllocGateV2Marshal(t *testing.T) {
	skipUnderRace(t)
	enc := transmit.NewEncoderV2()
	deltas := ingestDeltaSets()
	const node = "fnode0001"
	// Warmup interns every name, sizes the scratch, and drains the tail.
	f := transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet(), SentNs: 0}
	buf := enc.Encode(nil, f)
	enc.Ack(enc.TableLen())
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		buf = enc.Encode(buf[:0], transmit.Frame{
			Node: node, Seq: seq, Kind: transmit.FrameDelta,
			Values: deltas[i%len(deltas)], SentNs: int64(seq) * 15_000_000_000,
		})
		i++
	})
	if allocs != 0 {
		t.Fatalf("v2 marshal allocates %.1f times per frame, want 0", allocs)
	}
}

// TestAllocGateV2Ingest pins the full v2 receive path — binary decode
// into the decoder's scratch, then sequenced ingest — at zero
// allocations per in-order numeric delta, matching the v1 path's gate.
func TestAllocGateV2Ingest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	enc := transmit.NewEncoderV2()
	dec := transmit.NewDecoderV2()
	deltas := ingestDeltaSets()
	const node = "fnode0001"
	buf := enc.Encode(nil, transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet()})
	f, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.HandleFrame(f); err != nil {
		t.Fatal(err)
	}
	if n, ok := dec.PendingAck(); ok {
		enc.Ack(n)
	}
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		buf = enc.Encode(buf[:0], transmit.Frame{
			Node: node, Seq: seq, Kind: transmit.FrameDelta,
			Values: deltas[i%len(deltas)], SentNs: int64(seq) * 15_000_000_000,
		})
		f, err := dec.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("v2 ingest allocates %.1f times per frame, want 0", allocs)
	}
}

// batchGateFrames builds an 8-node batch of delta sub-frames (Seq 0,
// shared timestamp column) with values drawn from the shared delta
// fixtures, rotated by i so consecutive encodes carry fresh numbers.
func batchGateFrames(frames []transmit.Frame, names []string, deltas [][]consolidate.Value, i int) []transmit.Frame {
	frames = frames[:0]
	for j, name := range names {
		frames = append(frames, transmit.Frame{
			Node: name, Kind: transmit.FrameDelta, Values: deltas[(i+j)%len(deltas)],
		})
	}
	return frames
}

// TestAllocGateUplinkBatchMarshal pins the federation uplink's batched
// v2 encode (the E23 wire shape) at zero allocations per frame: once
// the dictionary is interned and every (node, metric) predictor pair
// exists, a steady-state batch is varint appends and XOR bit-writes
// into reused scratch, whatever the node count.
func TestAllocGateUplinkBatchMarshal(t *testing.T) {
	skipUnderRace(t)
	enc := transmit.NewBatchEncoderV2()
	names := ingestNodeNames()[:8]
	deltas := ingestDeltaSets()
	var frames []transmit.Frame
	// Warmup interns every name, creates the predictor pairs, sizes the
	// scratch, and drains the dictionary tail.
	frames = batchGateFrames(frames, names, deltas, 0)
	for i := range frames {
		frames[i].Kind = transmit.FrameSnapshot
		frames[i].Values = ingestFullSet()
	}
	buf := enc.Encode(nil, 1, 0, frames)
	enc.Ack(enc.TableLen())
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		i++
		frames = batchGateFrames(frames, names, deltas, i)
		buf = enc.Encode(buf[:0], seq, int64(seq)*100_000_000, frames)
	})
	if allocs != 0 {
		t.Fatalf("batched uplink marshal allocates %.1f times per frame, want 0", allocs)
	}
}

// TestAllocGateUplinkBatchIngest pins the parent tier's receive path —
// batch decode into the decoder's scratch, then one unsequenced ingest
// per node section — at zero allocations per batch frame, matching the
// per-node v2 gate. This is what keeps a root ingesting 100k mirrored
// nodes from touching the allocator at all in steady state.
func TestAllocGateUplinkBatchIngest(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	enc := transmit.NewBatchEncoderV2()
	dec := transmit.NewBatchDecoderV2()
	names := ingestNodeNames()[:8]
	deltas := ingestDeltaSets()
	emit := func(f transmit.Frame) {
		if err := srv.HandleFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	var frames []transmit.Frame
	frames = batchGateFrames(frames, names, deltas, 0)
	for i := range frames {
		frames[i].Kind = transmit.FrameSnapshot
		frames[i].Values = ingestFullSet()
	}
	buf := enc.Encode(nil, 1, 0, frames)
	if _, err := dec.Decode(buf, emit); err != nil {
		t.Fatal(err)
	}
	if n, ok := dec.PendingAck(); ok {
		enc.Ack(n)
	}
	seq := uint64(1)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		i++
		frames = batchGateFrames(frames, names, deltas, i)
		buf = enc.Encode(buf[:0], seq, int64(seq)*100_000_000, frames)
		if _, err := dec.Decode(buf, emit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched uplink ingest allocates %.1f times per frame, want 0", allocs)
	}
}

// TestAllocGateUplinkFlush pins the child side end to end: ingest marks
// the dirty stripes (noteFrame under the ingest hot path), and Flush
// drains, reads the registry, assembles sub-frames, and encodes one
// batch — all in reused scratch, zero allocations per flush cycle.
func TestAllocGateUplinkFlush(t *testing.T) {
	skipUnderRace(t)
	srv := core.NewServer(core.ServerConfig{Cluster: "allocgate"})
	u := core.NewUplink(srv, core.UplinkConfig{
		Name: "leaf", Send: func([]byte) error { return nil },
	})
	srv.SetUplink(u)
	// Negotiate the batch wire the way a parent would.
	u.HandleControl(transmit.MarshalWireAnswer(nil, transmit.WireV2), 0)
	names := ingestNodeNames()[:8]
	full := ingestFullSet()
	deltas := ingestDeltaSets()
	for _, name := range names {
		srv.HandleValues(name, full)
	}
	// First flush is the snap-all (registers every node and interns the
	// dictionary); the second sizes the delta-path scratch.
	now := int64(0)
	if _, err := u.Flush(now); err != nil {
		t.Fatal(err)
	}
	for j, name := range names {
		srv.HandleValues(name, deltas[j%len(deltas)])
	}
	now += 100_000_000
	if _, err := u.Flush(now); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		for j, name := range names {
			srv.HandleValues(name, deltas[(i+j)%len(deltas)])
		}
		now += 100_000_000
		if sent, err := u.Flush(now); err != nil || sent != len(names) {
			t.Fatalf("flush sent %d (%v), want %d", sent, err, len(names))
		}
	})
	if allocs != 0 {
		t.Fatalf("uplink mark+flush allocates %.1f times per cycle, want 0", allocs)
	}
}
