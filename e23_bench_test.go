// E23: hierarchical federation ablation. The same synthetic monitoring
// round — every node reporting one changed value — is driven into (a) a
// 3-tier federated tree whose uplinks forward change-only deltas as
// batched v2 frames, and (b) a flat single master ingesting every node
// directly, on identical virtual fabrics. The propagation metric is the
// virtual time from injecting a round at the leaves until the TOP of
// the tree has applied every node's change; the wire metric is bytes
// arriving at the top tier's monitoring endpoint per node per round.
// EXPERIMENTS.md requires the federated tree to beat the flat master on
// propagation latency at 100k nodes (the flat master's 100 Mb/s link
// serializes ~13 MB of per-node frames, over a second of fan-in queue,
// while each federation tier ingests in parallel and forwards a few
// batched bytes per node), and the batched uplink to cut bytes/node by
// an order of magnitude against per-node frames of either wire version.
package clusterworx

import (
	"testing"
	"time"

	"clusterworx/internal/core"
	"clusterworx/internal/transmit"
)

const e23Period = 100 * time.Millisecond

// benchFedPropagation measures one topology. Each benchmark iteration
// is one monitoring round: inject at a period boundary, then step the
// virtual clock event by event until the root has applied every node's
// change, and charge the virtual latency and top-link bytes.
func benchFedPropagation(b *testing.B, fanout, tiers, perLeaf int) {
	fed, err := core.NewFedSim(core.FedConfig{
		Fanout: fanout, Tiers: tiers, NodesPerLeaf: perLeaf,
		Synthetic: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := int64(fed.TotalNodes())
	// Propagation counter at the top: raw-node sub-frames applied from
	// child uplinks, or — for the flat control, which has no uplinks —
	// monitoring packets delivered (one per node frame).
	applied := func() int64 {
		if tiers > 1 {
			return fed.Root.Server.UplinkInStats().RawNodes
		}
		return fed.Root.RxPackets()
	}
	step := func(target int64, guard time.Duration) {
		for applied() < target && fed.Clk.Now() < guard {
			if !fed.Clk.Step() {
				break
			}
		}
		if got := applied(); got < target {
			b.Fatalf("round never converged: %d/%d applied at %v", got, target, fed.Clk.Now())
		}
	}

	// Warm: the registration round (sequenced snapshots, dictionary
	// interning, first snap-all flush up every hop), then settle.
	fed.InjectRound()
	step(total, fed.Clk.Now()+20*e23Period)
	fed.Advance(e23Period - fed.Clk.Now()%e23Period)

	var lat time.Duration
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := fed.Clk.Now()
		startRx := fed.Root.Mon.Stats().RxBytes
		target := applied() + total
		fed.InjectRound()
		step(target, start+50*e23Period)
		lat += fed.Clk.Now() - start
		bytes += fed.Root.Mon.Stats().RxBytes - startRx
		// Run out the rest of the period so every round starts aligned.
		fed.Advance(e23Period - fed.Clk.Now()%e23Period)
	}
	b.StopTimer()
	b.ReportMetric(float64(lat.Microseconds())/float64(b.N)/1e3, "vms/round")
	b.ReportMetric(float64(bytes)/float64(b.N)/float64(total), "topB/node")
}

// BenchmarkE23FedPropagation100k: 100 leaves x 1000 nodes under 10 mids.
func BenchmarkE23FedPropagation100k(b *testing.B) {
	benchFedPropagation(b, 10, 3, 1000)
}

// BenchmarkE23FlatPropagation100k: the ablation — one master, 100k nodes.
func BenchmarkE23FlatPropagation100k(b *testing.B) {
	benchFedPropagation(b, 0, 1, 100000)
}

// Small variants for the bench-smoke gate: same shapes, 256 nodes.
func BenchmarkE23FedPropagationSmall(b *testing.B) {
	benchFedPropagation(b, 4, 3, 16)
}

func BenchmarkE23FlatPropagationSmall(b *testing.B) {
	benchFedPropagation(b, 0, 1, 256)
}

// benchE23Nodes builds one uplink flush's worth of per-node delta
// sub-frames (the shape Uplink.build assembles).
func benchE23Nodes(n int) []transmit.Frame {
	names := ingestNodeNames()
	deltas := ingestDeltaSets()
	frames := make([]transmit.Frame, n)
	for i := range frames {
		frames[i] = transmit.Frame{
			Node: names[i%len(names)], Kind: transmit.FrameDelta,
			Values: deltas[i%len(deltas)],
		}
	}
	return frames
}

// BenchmarkE23UplinkEncodeBatched: 512 node sections in ONE batch frame
// sharing a dictionary, predictor chain, and timestamp column.
func BenchmarkE23UplinkEncodeBatched(b *testing.B) {
	frames := benchE23Nodes(512)
	enc := transmit.NewBatchEncoderV2()
	buf := enc.Encode(nil, 1, 0, frames)
	enc.Ack(enc.TableLen())
	var wire int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = enc.Encode(buf[:0], uint64(i)+2, int64(i)*100_000_000, frames)
		wire += int64(len(buf))
	}
	b.StopTimer()
	b.ReportMetric(float64(wire)/float64(b.N)/float64(len(frames)), "wireB/node")
}

// BenchmarkE23UplinkEncodePerNodeV2 is the unbatched ablation: the same
// 512 sub-frames as individual v2 frames over one session (shared
// dictionary, per-frame headers and timestamp streams).
func BenchmarkE23UplinkEncodePerNodeV2(b *testing.B) {
	frames := benchE23Nodes(512)
	enc := transmit.NewEncoderV2()
	var buf []byte
	seq := uint64(0)
	for i := range frames {
		f := frames[i]
		seq++
		f.Seq = seq
		buf = enc.Encode(buf[:0], f)
	}
	enc.Ack(enc.TableLen())
	var wire int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var round int64
		for j := range frames {
			f := frames[j]
			seq++
			f.Seq = seq
			f.SentNs = int64(i) * 100_000_000
			buf = enc.Encode(buf[:0], f)
			round += int64(len(buf))
		}
		wire += round
	}
	b.StopTimer()
	b.ReportMetric(float64(wire)/float64(b.N)/float64(len(frames)), "wireB/node")
}

// BenchmarkE23UplinkEncodePerNodeV1 is the flat master's wire: classic
// per-node v1 text frames, what every agent ships today.
func BenchmarkE23UplinkEncodePerNodeV1(b *testing.B) {
	frames := benchE23Nodes(512)
	var buf []byte
	seq := uint64(0)
	var wire int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var round int64
		for j := range frames {
			f := frames[j]
			seq++
			f.Seq = seq
			f.SentNs = int64(i) * 100_000_000
			buf = transmit.MarshalFrame(buf[:0], f)
			round += int64(len(buf))
		}
		wire += round
	}
	b.StopTimer()
	b.ReportMetric(float64(wire)/float64(b.N)/float64(len(frames)), "wireB/node")
}
