//go:build !race

package clusterworx

const raceEnabled = false
